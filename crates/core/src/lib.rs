//! The paper's contribution: address clustering, tagging and naming.
//!
//! Two heuristics link Bitcoin addresses under shared control:
//!
//! * **Heuristic 1** ([`heuristic1`]): all input addresses of a transaction
//!   belong to one user — an inherent property of the protocol (inputs are
//!   signed by their owners).
//! * **Heuristic 2** ([`change`]): the *one-time change address* of a
//!   transaction belongs to the same user as the inputs — an idiom of use,
//!   identified by the paper's four conditions and hardened by its §4.2
//!   refinements (Satoshi-Dice exception, wait-to-label, change-reuse and
//!   prior-self-change exclusions).
//!
//! [`fp`] implements the paper's step-through-time false-positive estimator;
//! [`cluster`] drives both heuristics over a
//! [`ResolvedChain`](fistful_chain::resolve::ResolvedChain) with a
//! [`union_find::UnionFind`]; [`incremental`] maintains the same partition
//! online, block by block, for live chains; [`tagdb`] and [`naming`] turn
//! ground-truth interactions into cluster names (and detect the
//! super-cluster failure mode); [`snapshot`] freezes a finished clustering
//! plus its names and aggregates into an immutable, serializable artifact
//! served to concurrent readers; [`metrics`] scores everything against
//! simulator ground truth.

#![warn(missing_docs)]

pub mod change;
pub mod cluster;
pub mod fp;
pub mod heuristic1;
pub mod incremental;
pub mod metrics;
pub mod naming;
pub mod snapshot;
pub mod tagdb;
pub mod testutil;
pub mod union_find;

pub use change::{ChangeConfig, ChangeLabels, ChangeScanner};
pub use cluster::{Clusterer, Clustering};
pub use incremental::sharded::{IngestConfig, ShardedIngest};
pub use incremental::IncrementalClusterer;
pub use naming::{NamingReport, SuperCluster};
pub use snapshot::{ClusterInfo, ClusterSnapshot, SnapshotError};
pub use tagdb::{Tag, TagDb, TagSource};
pub use union_find::UnionFind;

//! Heuristic 2: one-time change address identification.
//!
//! The paper's definition (§4.1): an address is a *one-time change address*
//! for a transaction if
//!
//! 1. the address has not appeared in any previous transaction;
//! 2. the transaction is not a coin generation;
//! 3. there is no self-change address (no output address also appears among
//!    the inputs);
//! 4. all the other output addresses have appeared in previous transactions.
//!
//! and the §4.2 refinements, each individually switchable so the
//! experiments can walk the paper's false-positive ladder:
//!
//! * **Satoshi-Dice exception** — receives that come *solely from* tagged
//!   gambling addresses do not invalidate one-timeness (dice sites pay
//!   winnings back to the betting address);
//! * **wait-to-label** — a provisional label is discarded if the address
//!   receives again within a waiting window (one day / one week);
//! * **change-reuse exclusion** — if any output address of the transaction
//!   has already received exactly one input, nothing is tagged;
//! * **prior-self-change exclusion** — if any output address was previously
//!   used as a self-change address, nothing is tagged.

use fistful_chain::resolve::{AddressId, ResolvedChain, ResolvedTx, TxId};
use std::collections::HashSet;

/// Blocks per day at the 10-minute target.
pub const BLOCKS_PER_DAY: u64 = 144;
/// Blocks per week.
pub const BLOCKS_PER_WEEK: u64 = 1008;

/// Configuration of Heuristic 2. `Default` is the *naive* heuristic
/// (conditions 1–4 only); [`ChangeConfig::refined`] enables everything the
/// paper settled on.
#[derive(Debug, Clone, Default)]
pub struct ChangeConfig {
    /// Addresses known (via tags) to belong to dice-style gambling services.
    pub dice_addresses: HashSet<AddressId>,
    /// Enable the Satoshi-Dice exception.
    pub dice_exception: bool,
    /// Discard labels whose address receives again within this many blocks
    /// (see [`receives_again_within`] for the exact boundary semantics:
    /// inclusive, so `Some(0)` is *not* a no-op — it still discards labels
    /// whose address receives again later in the same block).
    pub wait_blocks: Option<u64>,
    /// Skip transactions where an output address already received exactly
    /// one input ("same change address used twice" mitigation).
    pub skip_reused_change: bool,
    /// Skip transactions where an output address was previously used as a
    /// self-change address.
    pub skip_prior_self_change: bool,
    /// Minimum number of outputs for a transaction to be considered.
    /// The paper's definition has no output-count requirement (condition 4
    /// is vacuous for single-output sweeps), so the default is 1; set to 2
    /// to ablate the effect of labelling sweeps.
    pub min_outputs: usize,
}

impl ChangeConfig {
    /// The naive heuristic: conditions 1–4 only.
    pub fn naive() -> ChangeConfig {
        ChangeConfig { min_outputs: 1, ..Default::default() }
    }

    /// The fully refined heuristic the paper uses for its analysis
    /// (§4.2): dice exception, one-week wait, reuse and self-change
    /// exclusions.
    pub fn refined(dice_addresses: HashSet<AddressId>) -> ChangeConfig {
        ChangeConfig {
            dice_addresses,
            dice_exception: true,
            wait_blocks: Some(BLOCKS_PER_WEEK),
            skip_reused_change: true,
            skip_prior_self_change: true,
            min_outputs: 1,
        }
    }
}

/// Why a transaction received no change label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// Coin generations have no change (condition 2).
    Coinbase,
    /// Fewer outputs than `min_outputs`.
    TooFewOutputs,
    /// An output address also appears among the inputs (condition 3).
    SelfChange,
    /// No output is fresh (condition 1 never met).
    NoCandidate,
    /// More than one fresh output (condition 4 violated).
    Ambiguous,
    /// Refinement: an output address had already received exactly one input.
    ReusedChange,
    /// Refinement: an output address was previously a self-change address.
    PriorSelfChange,
    /// Refinement: the candidate received again within the wait window.
    FailedWait,
}

/// Per-transaction change labels plus bookkeeping statistics.
#[derive(Debug, Clone, Default)]
pub struct ChangeLabels {
    /// For each transaction (by [`TxId`]): the labelled change output index.
    pub vout_of: Vec<Option<u32>>,
    /// Count of transactions skipped per reason (indexed by discriminant
    /// order of [`SkipReason`]).
    pub skip_counts: [usize; 8],
    /// Total labels assigned.
    pub labels: usize,
}

impl ChangeLabels {
    /// The labelled change output of transaction `tx`, if any.
    pub fn change_vout(&self, tx: TxId) -> Option<u32> {
        self.vout_of.get(tx as usize).copied().flatten()
    }

    /// Iterates `(tx, vout, address)` over all labels.
    pub fn iter<'a>(
        &'a self,
        chain: &'a ResolvedChain,
    ) -> impl Iterator<Item = (TxId, u32, AddressId)> + 'a {
        self.vout_of.iter().enumerate().filter_map(move |(t, v)| {
            v.map(|vout| {
                let addr = chain.txs[t].outputs[vout as usize].address;
                (t as TxId, vout, addr)
            })
        })
    }

    pub(crate) fn note_skip(&mut self, reason: SkipReason) {
        self.skip_counts[reason as usize] += 1;
    }

    /// Count of transactions skipped for `reason`.
    pub fn skipped(&self, reason: SkipReason) -> usize {
        self.skip_counts[reason as usize]
    }
}

/// True if every input of `tx` is a tagged dice address.
fn all_inputs_dice(chain: &ResolvedChain, tx: TxId, dice: &HashSet<AddressId>) -> bool {
    let t = &chain.txs[tx as usize];
    !t.inputs.is_empty() && t.inputs.iter().all(|i| dice.contains(&i.address))
}

/// True if `addr` receives again after `tx` within `window` blocks
/// (receives coming solely from dice addresses are ignored when the
/// exception is enabled).
///
/// The paper's "receives again within *d*" is pinned down as: there exists a
/// transaction strictly later in chain order whose outputs pay `addr` at a
/// height `h2` with `h2 - base_height <= window` — an **inclusive** window
/// boundary, measured in blocks from the labelling transaction's block.
/// Consequences worth spelling out:
///
/// * a receive at exactly `base_height + window` still discards the label;
///   one block past the window does not;
/// * `window = 0` covers only later receives in the *same block* — it is
///   not equivalent to disabling the wait (`wait_blocks: None`);
/// * `window = u64::MAX` checks all later receives (the false-positive
///   estimator's "used again at any later time").
///
/// The scan early-exits once past the window, which is sound because
/// [`ResolvedChain::received_in`] is height-sorted — an invariant
/// `ResolvedChain::add_tx` now enforces rather than silently assumes.
pub fn receives_again_within(
    chain: &ResolvedChain,
    addr: AddressId,
    tx: TxId,
    window: u64,
    config: &ChangeConfig,
) -> bool {
    let base_height = chain.txs[tx as usize].height;
    for &t2 in chain.received_in(addr) {
        if t2 <= tx {
            continue;
        }
        let h2 = chain.txs[t2 as usize].height;
        // Later in chain order ⟹ h2 >= base_height (enforced by add_tx).
        if h2 - base_height > window {
            break; // received_in is height-sorted; later entries only recede
        }
        if config.dice_exception && all_inputs_dice(chain, t2, &config.dice_addresses) {
            continue;
        }
        return true;
    }
    false
}

/// The stateless, transaction-local half of the labelling decision:
/// conditions 2–3 plus the output-count gate, in the exact precedence
/// [`ChangeScanner::decide`] reports them. Needs no per-address history, so
/// the sharded ingest pipeline computes it on a transaction's home shard
/// without consulting the other shards.
pub(crate) fn precondition_skip(tx: &ResolvedTx, config: &ChangeConfig) -> Option<SkipReason> {
    // Condition 2: not a coin generation.
    if tx.is_coinbase {
        return Some(SkipReason::Coinbase);
    }
    if tx.outputs.len() < config.min_outputs.max(1) {
        return Some(SkipReason::TooFewOutputs);
    }

    // Condition 3: no self-change address.
    let input_set: HashSet<AddressId> = tx.inputs.iter().map(|i| i.address).collect();
    if tx.outputs.iter().any(|o| input_set.contains(&o.address)) {
        return Some(SkipReason::SelfChange);
    }
    None
}

/// Conditions 1 + 4: exactly one output address makes its first appearance
/// in this transaction (and only once within it). Pure chain lookup — the
/// "previous transactions" of condition 1 come from
/// [`ResolvedChain::first_seen`], not from running state — so it too is
/// computable per transaction without cross-shard coordination.
pub(crate) fn fresh_candidate(
    chain: &ResolvedChain,
    t_id: TxId,
    tx: &ResolvedTx,
) -> Result<(u32, AddressId), SkipReason> {
    let mut candidate: Option<(u32, AddressId)> = None;
    let mut candidates = 0;
    for (vout, out) in tx.outputs.iter().enumerate() {
        let fresh = chain.first_seen(out.address) == t_id
            && tx
                .outputs
                .iter()
                .filter(|o| o.address == out.address)
                .count()
                == 1;
        if fresh {
            candidates += 1;
            candidate = Some((vout as u32, out.address));
        }
    }
    match candidates {
        0 => Err(SkipReason::NoCandidate),
        1 => Ok(candidate.unwrap()),
        _ => Err(SkipReason::Ambiguous),
    }
}

/// The running per-address state behind Heuristic 2's "previous
/// transactions" conditions, factored out so the batch [`identify`] pass,
/// the incremental engine (`crate::incremental`) and the sharded pipeline
/// (`crate::incremental::sharded`) share one decision procedure.
///
/// Feed transactions in chain order: call [`decide`](Self::decide) *before*
/// [`absorb`](Self::absorb) for each transaction, so "previous" always means
/// strictly-earlier transactions. State grows on demand as new addresses
/// appear, which is what lets the incremental path use it without knowing
/// the final address count up front.
///
/// A scanner can be restricted to one shard of the address space
/// ([`for_shard`](Self::for_shard)): it then tracks history only for
/// addresses it owns (`addr % shard_count == shard`), stored at local index
/// `addr / shard_count` so per-shard memory is proportional to the shard's
/// share. The stateful refinement checks decompose per address, so each
/// shard evaluates its own veto over the outputs it owns and the sharded
/// reconcile step ORs the per-shard verdicts — exactly the predicate an
/// unsharded scanner computes.
#[derive(Debug, Clone)]
pub struct ChangeScanner {
    /// Per owned address (local index): how many outputs have paid it.
    receive_count: Vec<u32>,
    /// Per owned address (local index): ever used as a self-change address.
    was_self_change: Vec<bool>,
    shard: u32,
    stride: u32,
}

impl Default for ChangeScanner {
    fn default() -> ChangeScanner {
        ChangeScanner::for_shard(0, 1)
    }
}

impl ChangeScanner {
    /// A scanner with no history, covering the whole address space.
    pub fn new() -> ChangeScanner {
        ChangeScanner::default()
    }

    /// A scanner pre-sized for `n_addr` addresses (batch path).
    pub fn with_capacity(n_addr: usize) -> ChangeScanner {
        ChangeScanner {
            receive_count: Vec::with_capacity(n_addr),
            was_self_change: Vec::with_capacity(n_addr),
            shard: 0,
            stride: 1,
        }
    }

    /// A scanner owning only the addresses of shard `shard` out of
    /// `shard_count` (round-robin partition). Panics unless
    /// `shard < shard_count` and `shard_count >= 1`.
    pub fn for_shard(shard: u32, shard_count: u32) -> ChangeScanner {
        assert!(
            shard_count >= 1 && shard < shard_count,
            "shard {shard} out of range for {shard_count} shards"
        );
        ChangeScanner {
            receive_count: Vec::new(),
            was_self_change: Vec::new(),
            shard,
            stride: shard_count,
        }
    }

    /// The local slot for `addr`, or `None` if another shard owns it.
    fn slot(&self, addr: AddressId) -> Option<usize> {
        (addr % self.stride == self.shard).then(|| (addr / self.stride) as usize)
    }

    fn receives(&self, slot: usize) -> u32 {
        self.receive_count.get(slot).copied().unwrap_or(0)
    }

    fn self_changed(&self, slot: usize) -> bool {
        self.was_self_change.get(slot).copied().unwrap_or(false)
    }

    /// The change-reuse refinement's veto over the outputs this scanner
    /// owns: some owned output address has received exactly one input so
    /// far. For an unsharded scanner this is the whole refinement; sharded
    /// verdicts are ORed across shards.
    pub(crate) fn reused_change_veto(&self, tx: &ResolvedTx) -> bool {
        tx.outputs
            .iter()
            .any(|o| self.slot(o.address).is_some_and(|s| self.receives(s) == 1))
    }

    /// The prior-self-change refinement's veto over the outputs this
    /// scanner owns.
    pub(crate) fn prior_self_change_veto(&self, tx: &ResolvedTx) -> bool {
        tx.outputs
            .iter()
            .any(|o| self.slot(o.address).is_some_and(|s| self.self_changed(s)))
    }

    /// The per-transaction labelling decision (conditions 1–4 plus the
    /// non-temporal refinements), against the history absorbed so far.
    /// The temporal wait-to-label refinement is the caller's concern: batch
    /// labelling looks ahead with [`receives_again_within`]; the incremental
    /// engine parks the decision in its pending queue.
    ///
    /// Only valid on an unsharded scanner (a sharded one sees a subset of
    /// the history; the sharded pipeline combines per-shard vetoes at
    /// reconcile time instead).
    pub fn decide(
        &self,
        chain: &ResolvedChain,
        t_id: TxId,
        tx: &ResolvedTx,
        config: &ChangeConfig,
    ) -> Result<(u32, AddressId), SkipReason> {
        assert_eq!(self.stride, 1, "decide requires an unsharded scanner");
        if let Some(reason) = precondition_skip(tx, config) {
            return Err(reason);
        }

        // Refinements that veto the whole transaction.
        if config.skip_reused_change && self.reused_change_veto(tx) {
            return Err(SkipReason::ReusedChange);
        }
        if config.skip_prior_self_change && self.prior_self_change_veto(tx) {
            return Err(SkipReason::PriorSelfChange);
        }

        fresh_candidate(chain, t_id, tx)
    }

    /// Updates the running state with the outputs of `tx` this scanner
    /// owns. Call once per transaction, after [`decide`](Self::decide) — in
    /// the sharded pipeline, *every* shard absorbs every transaction (each
    /// updating only its own addresses), so per-shard state stays in
    /// lockstep with what one unsharded scanner would hold.
    pub fn absorb(&mut self, tx: &ResolvedTx) {
        let input_set: HashSet<AddressId> = tx.inputs.iter().map(|i| i.address).collect();
        for out in &tx.outputs {
            let Some(s) = self.slot(out.address) else { continue };
            if s >= self.receive_count.len() {
                self.receive_count.resize(s + 1, 0);
                self.was_self_change.resize(s + 1, false);
            }
            self.receive_count[s] += 1;
            if input_set.contains(&out.address) {
                self.was_self_change[s] = true;
            }
        }
    }
}

/// Runs Heuristic 2 over the chain with the given configuration.
pub fn identify(chain: &ResolvedChain, config: &ChangeConfig) -> ChangeLabels {
    let mut labels = ChangeLabels {
        vout_of: vec![None; chain.tx_count()],
        ..Default::default()
    };
    let mut scanner = ChangeScanner::with_capacity(chain.address_count());

    for (t, tx) in chain.txs.iter().enumerate() {
        let t_id = t as TxId;
        // Decide the label first, then update running state.
        match scanner.decide(chain, t_id, tx, config) {
            Ok((vout, addr)) => {
                // Wait-to-label: discard if the address receives again within
                // the window (dice-sourced receives excepted).
                let failed_wait = match config.wait_blocks {
                    Some(w) => receives_again_within(chain, addr, t_id, w, config),
                    None => false,
                };
                if failed_wait {
                    labels.note_skip(SkipReason::FailedWait);
                } else {
                    labels.vout_of[t] = Some(vout);
                    labels.labels += 1;
                }
            }
            Err(reason) => labels.note_skip(reason),
        }
        scanner.absorb(tx);
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestChain;

    /// cb(1) → tx[(2, fresh), (1-seen? no...)] — canonical change shape:
    /// input from addr 1, pays previously-seen addr 2, change to fresh 3.
    fn canonical() -> (TestChain, usize) {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let _ = cb2;
        // addr 2 has appeared (coinbase); addr 3 is fresh.
        let spend = t.tx(&[(cb1, 0)], &[(2, 30), (3, 20)]);
        (t, spend)
    }

    #[test]
    fn labels_canonical_change() {
        let (t, spend) = canonical();
        let labels = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(labels.change_vout(spend as u32), Some(1));
        assert_eq!(labels.labels, 1);
    }

    #[test]
    fn coinbase_never_labelled() {
        let (t, _) = canonical();
        let labels = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(labels.change_vout(0), None);
        assert!(labels.skipped(SkipReason::Coinbase) >= 2);
    }

    #[test]
    fn ambiguous_two_fresh_outputs() {
        let mut t = TestChain::new();
        let cb = t.coinbase(1, 50);
        // Both 2 and 3 are fresh → ambiguous.
        let spend = t.tx(&[(cb, 0)], &[(2, 30), (3, 20)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(labels.change_vout(spend as u32), None);
        assert_eq!(labels.skipped(SkipReason::Ambiguous), 1);
    }

    #[test]
    fn no_candidate_when_all_outputs_seen() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50);
        let _cb3 = t.coinbase(3, 50);
        let spend = t.tx(&[(cb1, 0)], &[(2, 30), (3, 20)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(labels.change_vout(spend as u32), None);
        assert_eq!(labels.skipped(SkipReason::NoCandidate), 1);
    }

    #[test]
    fn self_change_blocks_labelling() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50);
        // Change back to input address 1; fresh addr 3 must NOT be labelled.
        let spend = t.tx(&[(cb1, 0)], &[(3, 30), (1, 20)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(labels.change_vout(spend as u32), None);
        assert_eq!(labels.skipped(SkipReason::SelfChange), 1);
    }

    #[test]
    fn single_output_sweep_labelled_by_default() {
        let mut t = TestChain::new();
        let cb = t.coinbase(1, 50);
        let sweep = t.tx(&[(cb, 0)], &[(2, 50)]);
        // The paper's conditions are vacuously met by a sweep to a fresh
        // address, so the default config labels it.
        let labels = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(labels.change_vout(sweep as u32), Some(0));

        // min_outputs = 2 ablates sweep labelling.
        let mut cfg = ChangeConfig::naive();
        cfg.min_outputs = 2;
        let labels = identify(&t.chain, &cfg);
        assert_eq!(labels.change_vout(sweep as u32), None);
        assert_eq!(labels.skipped(SkipReason::TooFewOutputs), 1);
    }

    #[test]
    fn duplicate_fresh_output_addresses_are_ambiguous_not_candidates() {
        let mut t = TestChain::new();
        let cb = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50);
        // Outputs: [3, 3] — address 3 fresh but duplicated; [2] seen.
        let spend = t.tx(&[(cb, 0)], &[(3, 20), (3, 10), (2, 20)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(labels.change_vout(spend as u32), None);
    }

    #[test]
    fn reused_change_refinement_skips_second_use() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        // Recipient 5 receives twice up front so that paying it does not
        // itself trigger the (deliberately ultra-conservative) reuse veto.
        let _cb5a = t.coinbase(5, 50);
        let _cb5b = t.coinbase(5, 50);
        // tx1: change to fresh 4 (labelled). Pays seen addr 5.
        let tx1 = t.tx(&[(cb1, 0)], &[(5, 30), (4, 20)]);
        // tx2 (different user, addr 2): SAME address 4 used as change again,
        // recipient 6 is fresh. Naive H2 mislabels 6; refined skips.
        let tx2 = t.tx(&[(cb2, 0)], &[(6, 30), (4, 20)]);

        let naive = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(naive.change_vout(tx1 as u32), Some(1));
        // Naive: output 4 has appeared (tx1), 6 is fresh → labels 6. Wrong!
        assert_eq!(naive.change_vout(tx2 as u32), Some(0));

        let mut cfg = ChangeConfig::naive();
        cfg.skip_reused_change = true;
        let refined = identify(&t.chain, &cfg);
        assert_eq!(refined.change_vout(tx1 as u32), Some(1));
        assert_eq!(refined.change_vout(tx2 as u32), None);
        assert_eq!(refined.skipped(SkipReason::ReusedChange), 1);
    }

    #[test]
    fn prior_self_change_refinement() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        // tx1: self-change on address 1 (pays seen addr 2).
        let tx1 = t.tx(&[(cb1, 0)], &[(2, 30), (1, 20)]);
        // tx2: addr 2 spends, paying fresh 6 and "change" to addr 1 (which
        // was previously a self-change address).
        let tx2 = t.tx(&[(cb2, 0)], &[(6, 30), (1, 20)]);

        let naive = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(naive.change_vout(tx1 as u32), None); // self-change
        assert_eq!(naive.change_vout(tx2 as u32), Some(0)); // mislabels 6

        let mut cfg = ChangeConfig::naive();
        cfg.skip_prior_self_change = true;
        let refined = identify(&t.chain, &cfg);
        assert_eq!(refined.change_vout(tx2 as u32), None);
        assert_eq!(refined.skipped(SkipReason::PriorSelfChange), 1);
    }

    #[test]
    fn wait_to_label_discards_soon_reused_address() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let _cb5 = t.coinbase(5, 50);
        // tx at height 3: change to fresh 4.
        let tx1 = t.tx(&[(cb1, 0)], &[(5, 30), (4, 20)]);
        // Address 4 receives again at height 4 (within a day).
        let _pay = t.tx(&[(cb2, 0)], &[(4, 30), (5, 20)]);

        let no_wait = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(no_wait.change_vout(tx1 as u32), Some(1));

        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(BLOCKS_PER_DAY);
        let waited = identify(&t.chain, &cfg);
        assert_eq!(waited.change_vout(tx1 as u32), None);
        assert_eq!(waited.skipped(SkipReason::FailedWait), 1);
    }

    #[test]
    fn wait_window_is_bounded() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let _cb5 = t.coinbase(5, 50);
        let tx1 = t.tx(&[(cb1, 0)], &[(5, 30), (4, 20)]);
        // Reuse far beyond the window (height 5000).
        let _pay = t.tx_at(&[(cb2, 0)], &[(4, 30), (5, 20)], Some(5000));

        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(BLOCKS_PER_DAY);
        let labels = identify(&t.chain, &cfg);
        // The reuse is outside the window, so the label stands.
        assert_eq!(labels.change_vout(tx1 as u32), Some(1));
    }

    /// Canonical change at height 3 (change to fresh addr 4), with the
    /// reuse receive placed at `reuse_height`.
    fn chain_with_reuse_at(reuse_height: u64) -> (TestChain, usize) {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50); // height 0
        let cb2 = t.coinbase(2, 50); // height 1
        let _cb5 = t.coinbase(5, 50); // height 2
        let tx1 = t.tx(&[(cb1, 0)], &[(5, 30), (4, 20)]); // height 3
        let _pay = t.tx_at(&[(cb2, 0)], &[(4, 30), (5, 19)], Some(reuse_height));
        (t, tx1)
    }

    fn labelled_with_window(t: &TestChain, tx1: usize, window: u64) -> bool {
        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(window);
        identify(&t.chain, &cfg).change_vout(tx1 as u32).is_some()
    }

    #[test]
    fn window_zero_discards_same_block_reuse_only() {
        // Reuse later in the same block (height 3): window 0 discards.
        let (t, tx1) = chain_with_reuse_at(3);
        assert!(!labelled_with_window(&t, tx1, 0));
        // `Some(0)` is not `None`: without the wait the label stands.
        let no_wait = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(no_wait.change_vout(tx1 as u32), Some(1));

        // Reuse one block later (height 4): outside a zero window.
        let (t, tx1) = chain_with_reuse_at(4);
        assert!(labelled_with_window(&t, tx1, 0));
        assert!(!labelled_with_window(&t, tx1, 1));
    }

    #[test]
    fn window_boundary_is_inclusive() {
        // Reuse at exactly base_height + window (3 + 5 = 8): discarded.
        let (t, tx1) = chain_with_reuse_at(8);
        assert!(!labelled_with_window(&t, tx1, 5));
        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(5);
        assert_eq!(identify(&t.chain, &cfg).skipped(SkipReason::FailedWait), 1);

        // Reuse one block past the window (3 + 5 + 1 = 9): label stands.
        let (t, tx1) = chain_with_reuse_at(9);
        assert!(!labelled_with_window(&t, tx1, 6));
        assert!(labelled_with_window(&t, tx1, 5));
    }

    #[test]
    fn unbounded_window_checks_all_later_receives() {
        let (t, tx1) = chain_with_reuse_at(5000);
        assert!(labelled_with_window(&t, tx1, 4996)); // 3 + 4996 < 5000
        assert!(!labelled_with_window(&t, tx1, 4997)); // inclusive boundary
        assert!(!labelled_with_window(&t, tx1, u64::MAX));
    }

    #[test]
    fn dice_exception_spares_dice_paybacks() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let dice_funding = t.coinbase(9, 50); // address 9 = the dice house
        let _cb5 = t.coinbase(5, 50);
        // tx: change to fresh 4.
        let tx1 = t.tx(&[(cb1, 0)], &[(5, 30), (4, 20)]);
        // User bets from address 4 (spends it)...
        let bet = t.tx(&[(tx1, 1)], &[(9, 10), (6, 10)]);
        let _ = bet;
        // ...and the dice house pays winnings BACK to address 4.
        let _payout = t.tx(&[(dice_funding, 0)], &[(4, 19), (9, 31)]);

        // Without the exception + with waiting: label discarded.
        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(BLOCKS_PER_WEEK);
        let strict = identify(&t.chain, &cfg);
        assert_eq!(strict.change_vout(tx1 as u32), None);

        // With the dice exception the payback is ignored.
        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(BLOCKS_PER_WEEK);
        cfg.dice_exception = true;
        cfg.dice_addresses.insert(t.id(9));
        let lenient = identify(&t.chain, &cfg);
        assert_eq!(lenient.change_vout(tx1 as u32), Some(1));
    }

    #[test]
    fn sharded_scanners_reproduce_unsharded_vetoes() {
        // Per-shard veto verdicts, ORed across shards, must equal the
        // unsharded scanner's verdicts on every transaction — the identity
        // the sharded ingest reconcile step is built on.
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let tx1 = t.tx(&[(cb1, 0)], &[(2, 30), (4, 20)]); // change to fresh 4
        let _tx2 = t.tx(&[(cb2, 0)], &[(6, 30), (4, 20)]); // reuses 4
        let _tx3 = t.tx(&[(tx1, 0)], &[(2, 15), (7, 14)]); // self-change on 2
        let chain = &t.chain;

        for shards in [2u32, 3, 4] {
            let mut whole = ChangeScanner::new();
            let mut parts: Vec<ChangeScanner> =
                (0..shards).map(|s| ChangeScanner::for_shard(s, shards)).collect();
            for tx in &chain.txs {
                assert_eq!(
                    parts.iter().any(|p| p.reused_change_veto(tx)),
                    whole.reused_change_veto(tx),
                    "reused veto, {shards} shards"
                );
                assert_eq!(
                    parts.iter().any(|p| p.prior_self_change_veto(tx)),
                    whole.prior_self_change_veto(tx),
                    "prior-self-change veto, {shards} shards"
                );
                whole.absorb(tx);
                for p in &mut parts {
                    p.absorb(tx);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsharded")]
    fn decide_rejects_sharded_scanner() {
        let (t, spend) = canonical();
        let scanner = ChangeScanner::for_shard(0, 2);
        let _ = scanner.decide(
            &t.chain,
            spend as TxId,
            &t.chain.txs[spend],
            &ChangeConfig::naive(),
        );
    }

    #[test]
    fn refined_config_composition() {
        let cfg = ChangeConfig::refined(HashSet::new());
        assert!(cfg.dice_exception);
        assert!(cfg.skip_reused_change);
        assert!(cfg.skip_prior_self_change);
        assert_eq!(cfg.wait_blocks, Some(BLOCKS_PER_WEEK));
        assert_eq!(cfg.min_outputs, 1);
    }
}

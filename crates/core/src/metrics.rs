//! Scoring clustering output against simulator ground truth.
//!
//! The paper could only *estimate* Heuristic 2's error rate by observing
//! behaviour over time; our synthetic chain knows the true owner of every
//! address and the true change output of every transaction, so precision
//! and recall can be measured exactly — and compared against the paper's
//! observational estimator.

use crate::change::ChangeLabels;
use crate::cluster::Clustering;
use fistful_chain::resolve::ResolvedChain;
use std::collections::HashMap;

/// Exact precision/recall of change labels against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChangeScore {
    /// Labels whose transaction has ground-truth information.
    pub scored_labels: usize,
    /// Labels matching the true change output.
    pub correct: usize,
    /// Transactions that truly had a change output (the recall base).
    pub true_changes: usize,
}

impl ChangeScore {
    /// Fraction of labels that are correct.
    pub fn precision(&self) -> f64 {
        if self.scored_labels == 0 {
            1.0
        } else {
            self.correct as f64 / self.scored_labels as f64
        }
    }

    /// Fraction of true change outputs recovered.
    pub fn recall(&self) -> f64 {
        if self.true_changes == 0 {
            1.0
        } else {
            self.correct as f64 / self.true_changes as f64
        }
    }
}

/// Scores change labels against per-transaction ground truth
/// (`true_change[tx] = Some(vout)` when the transaction really created a
/// change output).
pub fn score_change_labels(
    chain: &ResolvedChain,
    labels: &ChangeLabels,
    true_change: &[Option<u32>],
) -> ChangeScore {
    assert_eq!(true_change.len(), chain.tx_count(), "ground truth length");
    let mut score = ChangeScore::default();
    for (t, truth) in true_change.iter().enumerate() {
        if truth.is_some() {
            score.true_changes += 1;
        }
        if let Some(labelled) = labels.change_vout(t as u32) {
            score.scored_labels += 1;
            if *truth == Some(labelled) {
                score.correct += 1;
            }
        }
    }
    score
}

/// Cluster quality against true owners.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterScore {
    /// Addresses with a known owner.
    pub scored_addresses: usize,
    /// Addresses in their cluster's majority-owner set.
    pub majority_addresses: usize,
    /// Clusters containing more than one true owner (false merges).
    pub impure_clusters: usize,
    /// Clusters evaluated (those with at least one known-owner address).
    pub evaluated_clusters: usize,
    /// Number of distinct owners split across more than one cluster.
    pub split_owners: usize,
    /// Owners observed.
    pub owners_seen: usize,
}

impl ClusterScore {
    /// Weighted purity: fraction of known-owner addresses that sit with
    /// their cluster's majority owner. 1.0 = no false merges at all.
    pub fn purity(&self) -> f64 {
        if self.scored_addresses == 0 {
            1.0
        } else {
            self.majority_addresses as f64 / self.scored_addresses as f64
        }
    }
}

/// Scores a clustering against per-address true owners
/// (`owner_of[address] = Some(owner id)`).
pub fn score_clustering(clustering: &Clustering, owner_of: &[Option<u32>]) -> ClusterScore {
    let mut per_cluster: HashMap<u32, HashMap<u32, usize>> = HashMap::new();
    let mut clusters_per_owner: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
    let mut score = ClusterScore::default();

    for (addr, owner) in owner_of.iter().enumerate() {
        let Some(owner) = owner else { continue };
        if addr >= clustering.assignment.len() {
            continue;
        }
        let cluster = clustering.assignment[addr];
        *per_cluster.entry(cluster).or_default().entry(*owner).or_default() += 1;
        clusters_per_owner.entry(*owner).or_default().insert(cluster);
        score.scored_addresses += 1;
    }

    score.evaluated_clusters = per_cluster.len();
    for owners in per_cluster.values() {
        let majority = owners.values().copied().max().unwrap_or(0);
        score.majority_addresses += majority;
        if owners.len() > 1 {
            score.impure_clusters += 1;
        }
    }
    score.owners_seen = clusters_per_owner.len();
    score.split_owners = clusters_per_owner.values().filter(|c| c.len() > 1).count();
    score
}

/// The paper's amplification factor: addresses named via clustering per
/// hand-tagged address (they report ≈1,600×).
pub fn amplification(hand_tagged: usize, named_addresses: u64) -> f64 {
    if hand_tagged == 0 {
        0.0
    } else {
        named_addresses as f64 / hand_tagged as f64
    }
}

/// Concentration of value or activity across entities — the paper's
/// conclusion rests on "the increasing dominance of a small number of
/// Bitcoin institutions". Given per-entity weights (e.g. balance per named
/// cluster), reports the share held by the top-k entities and the
/// Herfindahl–Hirschman index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Concentration {
    /// Share of the total held by the single largest entity.
    pub top1: f64,
    /// Share held by the five largest.
    pub top5: f64,
    /// Share held by the ten largest.
    pub top10: f64,
    /// Herfindahl–Hirschman index (sum of squared shares) in [0, 1].
    pub hhi: f64,
}

/// Computes concentration statistics over non-negative weights.
pub fn concentration(weights: &[u64]) -> Concentration {
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return Concentration { top1: 0.0, top5: 0.0, top10: 0.0, hhi: 0.0 };
    }
    let mut sorted: Vec<u64> = weights.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let share_of = |k: usize| -> f64 {
        let s: u128 = sorted.iter().take(k).map(|&w| w as u128).sum();
        s as f64 / total as f64
    };
    let hhi = sorted
        .iter()
        .map(|&w| {
            let s = w as f64 / total as f64;
            s * s
        })
        .sum();
    Concentration { top1: share_of(1), top5: share_of(5), top10: share_of(10), hhi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::{identify, ChangeConfig};
    use crate::cluster::Clusterer;
    use crate::testutil::TestChain;

    #[test]
    fn change_scoring_counts_matches() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50);
        let spend = t.tx(&[(cb1, 0)], &[(2, 30), (3, 20)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());

        // Ground truth agrees: vout 1 is change.
        let mut truth = vec![None; t.chain.tx_count()];
        truth[spend] = Some(1);
        let s = score_change_labels(&t.chain, &labels, &truth);
        assert_eq!(s.scored_labels, 1);
        assert_eq!(s.correct, 1);
        assert_eq!(s.true_changes, 1);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);

        // Ground truth disagrees.
        truth[spend] = Some(0);
        let s = score_change_labels(&t.chain, &labels, &truth);
        assert_eq!(s.correct, 0);
        assert_eq!(s.precision(), 0.0);
    }

    #[test]
    fn recall_counts_missed_changes() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        // Ambiguous: two fresh outputs → no label, but truth says vout 1.
        let spend = t.tx(&[(cb1, 0)], &[(2, 30), (3, 20)]);
        let labels = identify(&t.chain, &ChangeConfig::naive());
        let mut truth = vec![None; t.chain.tx_count()];
        truth[spend] = Some(1);
        let s = score_change_labels(&t.chain, &labels, &truth);
        assert_eq!(s.scored_labels, 0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.precision(), 1.0); // vacuous
    }

    #[test]
    fn purity_flags_false_merges() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        // Co-spend 1+2 — but ground truth says they're different owners
        // (an H1 violation, e.g. a CoinJoin-style transaction).
        t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
        let clustering = Clusterer::h1_only().run(&t.chain);
        let owner_of = vec![Some(10), Some(20), None];
        let s = score_clustering(&clustering, &owner_of);
        assert_eq!(s.scored_addresses, 2);
        assert_eq!(s.majority_addresses, 1);
        assert_eq!(s.impure_clusters, 1);
        assert!((s.purity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn split_owner_detection() {
        let mut t = TestChain::new();
        let _cb1 = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50);
        // No linking at all: owner 10 owns both addresses but they stay in
        // separate clusters.
        let clustering = Clusterer::h1_only().run(&t.chain);
        let owner_of = vec![Some(10), Some(10)];
        let s = score_clustering(&clustering, &owner_of);
        assert_eq!(s.split_owners, 1);
        assert_eq!(s.impure_clusters, 0);
        assert_eq!(s.purity(), 1.0);
    }

    #[test]
    fn concentration_math() {
        let c = concentration(&[50, 30, 10, 5, 5]);
        assert!((c.top1 - 0.5).abs() < 1e-9);
        assert!((c.top5 - 1.0).abs() < 1e-9);
        assert!((c.hhi - (0.25 + 0.09 + 0.01 + 0.0025 + 0.0025)).abs() < 1e-9);
        // Degenerate cases.
        assert_eq!(concentration(&[]).hhi, 0.0);
        assert_eq!(concentration(&[0, 0]).top1, 0.0);
        let mono = concentration(&[7]);
        assert_eq!(mono.top1, 1.0);
        assert_eq!(mono.hhi, 1.0);
    }

    #[test]
    fn amplification_math() {
        assert_eq!(amplification(0, 100), 0.0);
        assert!((amplification(1_070, 1_800_000) - 1682.2429906542056).abs() < 1e-6);
    }
}

//! Heuristic 1: multi-input linking.
//!
//! "If two (or more) addresses are used as inputs to the same transaction,
//! then they are controlled by the same user." This is an inherent property
//! of the protocol — every input must be signed by its owner — and has been
//! used by all prior work the paper builds on.

use crate::union_find::{AtomicUnionFind, UnionFind};
use fistful_chain::resolve::{ResolvedChain, ResolvedTx};

/// Statistics from a Heuristic 1 pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct H1Stats {
    /// Transactions examined (excluding coinbases).
    pub transactions: usize,
    /// Transactions with two or more distinct input addresses.
    pub multi_input_transactions: usize,
    /// Union operations that actually merged two sets.
    pub merges: usize,
}

/// The Heuristic 1 step, generic over the union primitive (`union(a, b)`
/// returning whether a merge happened) so the sequential, parallel and
/// incremental paths all run this one copy and stay in lockstep.
fn link_tx_with(tx: &ResolvedTx, mut union: impl FnMut(u32, u32) -> bool, stats: &mut H1Stats) {
    if tx.is_coinbase {
        return;
    }
    stats.transactions += 1;
    let mut it = tx.inputs.iter();
    let Some(first) = it.next() else { return };
    let mut multi = false;
    for input in it {
        if input.address != first.address {
            multi = true;
        }
        if union(first.address, input.address) {
            stats.merges += 1;
        }
    }
    if multi {
        stats.multi_input_transactions += 1;
    }
}

/// Links one transaction's input addresses in `uf`, updating `stats`.
/// This is the single Heuristic 1 step shared by the batch [`apply`] pass
/// and the incremental engine (`crate::incremental`); both therefore merge
/// in the same order and report identical statistics over the same prefix.
pub fn link_tx(tx: &ResolvedTx, uf: &mut UnionFind, stats: &mut H1Stats) {
    link_tx_with(tx, |a, b| uf.union(a, b), stats);
}

/// Applies Heuristic 1 over the whole chain, linking every transaction's
/// input addresses in `uf` (which must be sized to
/// `chain.address_count()`).
pub fn apply(chain: &ResolvedChain, uf: &mut UnionFind) -> H1Stats {
    assert!(
        uf.len() >= chain.address_count(),
        "union-find too small for chain"
    );
    let mut stats = H1Stats::default();
    for tx in &chain.txs {
        link_tx(tx, uf, &mut stats);
    }
    stats
}

/// Parallel Heuristic 1 using the lock-free union-find; used by the
/// ablation bench. Produces the same partition as [`apply`] (asserted by
/// the differential property test in `tests/properties.rs`) and the same
/// statistics: each successful merge is reported by exactly one thread's
/// CAS, so the per-thread counts sum to the sequential merge count.
pub fn apply_parallel(chain: &ResolvedChain, uf: &AtomicUnionFind, threads: usize) -> H1Stats {
    assert!(uf.len() >= chain.address_count());
    let txs = &chain.txs;
    let chunk = txs.len().div_ceil(threads.max(1));
    let partials = std::thread::scope(|s| {
        let handles: Vec<_> = txs
            .chunks(chunk.max(1))
            .map(|part| {
                s.spawn(move || {
                    let mut stats = H1Stats::default();
                    for tx in part {
                        link_tx_with(tx, |a, b| uf.union(a, b), &mut stats);
                    }
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("h1 worker panicked")).collect::<Vec<_>>()
    });
    partials.into_iter().fold(H1Stats::default(), |acc, s| H1Stats {
        transactions: acc.transactions + s.transactions,
        multi_input_transactions: acc.multi_input_transactions + s.multi_input_transactions,
        merges: acc.merges + s.merges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_chain::address::Address;
    use fistful_chain::amount::Amount;
    use fistful_chain::transaction::{OutPoint, Transaction, TxIn, TxOut};
    use fistful_chain::utxo::UtxoSet;

    /// Builds a tiny chain: coinbases to three addresses, then one tx that
    /// co-spends two of them.
    fn tiny_chain() -> ResolvedChain {
        let mut rc = ResolvedChain::new();
        let mut utxos = UtxoSet::new();
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);
        let c = Address::from_seed(3);
        let mut fundings = Vec::new();
        for (i, addr) in [a, b, c].into_iter().enumerate() {
            let cb = Transaction {
                version: 1,
                inputs: vec![TxIn {
                    prevout: OutPoint::null(),
                    witness: (i as u64).to_le_bytes().to_vec(),
                }],
                outputs: vec![TxOut { value: Amount::from_btc(50), address: addr }],
                lock_time: 0,
            };
            rc.add_tx(&cb, &utxos, i as u64, i as u64 * 600);
            utxos.apply(&cb, i as u64);
            fundings.push(cb);
        }
        // Co-spend a and b.
        let spend = Transaction {
            version: 1,
            inputs: vec![
                TxIn::unsigned(OutPoint { txid: fundings[0].txid(), vout: 0 }),
                TxIn::unsigned(OutPoint { txid: fundings[1].txid(), vout: 0 }),
            ],
            outputs: vec![TxOut {
                value: Amount::from_btc(100),
                address: Address::from_seed(4),
            }],
            lock_time: 0,
        };
        rc.add_tx(&spend, &utxos, 3, 1800);
        utxos.apply(&spend, 3);
        rc
    }

    #[test]
    fn links_co_spent_inputs() {
        let rc = tiny_chain();
        let mut uf = UnionFind::new(rc.address_count());
        let stats = apply(&rc, &mut uf);
        let a = rc.address_id(&Address::from_seed(1)).unwrap();
        let b = rc.address_id(&Address::from_seed(2)).unwrap();
        let c = rc.address_id(&Address::from_seed(3)).unwrap();
        let d = rc.address_id(&Address::from_seed(4)).unwrap();
        assert!(uf.same(a, b));
        assert!(!uf.same(a, c));
        assert!(!uf.same(a, d));
        assert_eq!(stats.transactions, 1);
        assert_eq!(stats.multi_input_transactions, 1);
        assert_eq!(stats.merges, 1);
    }

    #[test]
    fn coinbases_do_not_link() {
        let rc = tiny_chain();
        let mut uf = UnionFind::new(rc.address_count());
        apply(&rc, &mut uf);
        // 4 addresses, one merge → 3 clusters.
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let rc = tiny_chain();
        let mut seq = UnionFind::new(rc.address_count());
        let seq_stats = apply(&rc, &mut seq);
        let par = AtomicUnionFind::new(rc.address_count());
        let par_stats = apply_parallel(&rc, &par, 4);
        for x in 0..rc.address_count() as u32 {
            for y in 0..rc.address_count() as u32 {
                assert_eq!(
                    seq.same(x, y),
                    par.find(x) == par.find(y),
                    "pair ({x},{y})"
                );
            }
        }
        assert_eq!(par_stats, seq_stats);
    }
}

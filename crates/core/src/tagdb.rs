//! Ground-truth address tags.
//!
//! Tags label an address as belonging to a named real-world service. The
//! paper obtained them three ways, in decreasing reliability: by transacting
//! with services directly (§3.1), from self-submitted collections such as
//! `blockchain.info/tags`, and by scraping forums (§3.2).

use fistful_chain::resolve::AddressId;
use std::collections::{HashMap, HashSet};

/// Where a tag came from; determines its reliability weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TagSource {
    /// We transacted with the service ourselves and observed the address.
    OwnTransaction,
    /// Self-submitted (e.g. a signature on a forum, blockchain.info/tags).
    SelfSubmitted,
    /// Scraped from forum threads; requires due diligence.
    Forum,
}

impl TagSource {
    /// Voting weight used by cluster naming.
    pub fn reliability(self) -> f64 {
        match self {
            TagSource::OwnTransaction => 1.0,
            TagSource::SelfSubmitted => 0.6,
            TagSource::Forum => 0.4,
        }
    }
}

/// A single address tag.
#[derive(Debug, Clone, PartialEq)]
pub struct Tag {
    /// The tagged address.
    pub address: AddressId,
    /// The service name (e.g. "Mt. Gox").
    pub service: String,
    /// The service category (e.g. "exchange", "gambling").
    pub category: String,
    /// Provenance.
    pub source: TagSource,
}

/// An indexed collection of tags.
#[derive(Debug, Clone, Default)]
pub struct TagDb {
    tags: Vec<Tag>,
    by_address: HashMap<AddressId, Vec<usize>>,
}

impl TagDb {
    /// An empty database.
    pub fn new() -> TagDb {
        TagDb::default()
    }

    /// Adds a tag.
    pub fn add(&mut self, tag: Tag) {
        self.by_address.entry(tag.address).or_default().push(self.tags.len());
        self.tags.push(tag);
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True if no tags are present.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// All tags.
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// Tags attached to an address.
    pub fn tags_for(&self, addr: AddressId) -> impl Iterator<Item = &Tag> {
        self.by_address
            .get(&addr)
            .into_iter()
            .flatten()
            .map(|&i| &self.tags[i])
    }

    /// Number of distinct tagged addresses.
    pub fn tagged_address_count(&self) -> usize {
        self.by_address.len()
    }

    /// Distinct service names present.
    pub fn services(&self) -> HashSet<&str> {
        self.tags.iter().map(|t| t.service.as_str()).collect()
    }

    /// All addresses tagged with a given category (e.g. "gambling" for the
    /// Satoshi-Dice exception).
    pub fn addresses_in_category(&self, category: &str) -> HashSet<AddressId> {
        self.tags
            .iter()
            .filter(|t| t.category == category)
            .map(|t| t.address)
            .collect()
    }

    /// All addresses tagged with a given service name.
    pub fn addresses_of_service(&self, service: &str) -> HashSet<AddressId> {
        self.tags
            .iter()
            .filter(|t| t.service == service)
            .map(|t| t.address)
            .collect()
    }

    /// Tags restricted to a source.
    pub fn tags_from(&self, source: TagSource) -> impl Iterator<Item = &Tag> {
        self.tags.iter().filter(move |t| t.source == source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(addr: AddressId, service: &str, category: &str, source: TagSource) -> Tag {
        Tag { address: addr, service: service.into(), category: category.into(), source }
    }

    #[test]
    fn add_and_query() {
        let mut db = TagDb::new();
        db.add(tag(1, "Mt. Gox", "exchange", TagSource::OwnTransaction));
        db.add(tag(1, "Mt. Gox", "exchange", TagSource::Forum));
        db.add(tag(2, "Satoshi Dice", "gambling", TagSource::OwnTransaction));
        assert_eq!(db.len(), 3);
        assert_eq!(db.tagged_address_count(), 2);
        assert_eq!(db.tags_for(1).count(), 2);
        assert_eq!(db.tags_for(99).count(), 0);
        assert_eq!(db.services().len(), 2);
    }

    #[test]
    fn category_and_service_lookups() {
        let mut db = TagDb::new();
        db.add(tag(1, "Satoshi Dice", "gambling", TagSource::OwnTransaction));
        db.add(tag(2, "Satoshi Dice", "gambling", TagSource::OwnTransaction));
        db.add(tag(3, "Mt. Gox", "exchange", TagSource::OwnTransaction));
        let dice = db.addresses_in_category("gambling");
        assert_eq!(dice, HashSet::from([1, 2]));
        assert_eq!(db.addresses_of_service("Mt. Gox"), HashSet::from([3]));
    }

    #[test]
    fn reliability_ordering() {
        assert!(TagSource::OwnTransaction.reliability() > TagSource::SelfSubmitted.reliability());
        assert!(TagSource::SelfSubmitted.reliability() > TagSource::Forum.reliability());
    }

    #[test]
    fn source_filter() {
        let mut db = TagDb::new();
        db.add(tag(1, "A", "wallet", TagSource::OwnTransaction));
        db.add(tag(2, "B", "wallet", TagSource::Forum));
        assert_eq!(db.tags_from(TagSource::Forum).count(), 1);
        assert_eq!(db.tags_from(TagSource::OwnTransaction).count(), 1);
        assert_eq!(db.tags_from(TagSource::SelfSubmitted).count(), 0);
    }
}

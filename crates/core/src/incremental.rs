//! The incremental clustering engine.
//!
//! The batch [`Clusterer`](crate::cluster::Clusterer) re-derives the whole
//! partition from scratch on every call — fine for a one-shot study, wrong
//! for a live system absorbing new blocks continuously. This module ingests
//! blocks one at a time and maintains everything online:
//!
//! * the Heuristic 1 union-find and its [`H1Stats`], via the same
//!   [`link_tx`] step the batch pass uses;
//! * Heuristic 2's running per-address state, via the shared
//!   [`ChangeScanner`];
//! * a **pending-decision queue** for the wait-to-label refinement: a
//!   provisional label needs `wait_blocks` of future history before it can
//!   be accepted, so the decision is parked and resolved as later blocks
//!   arrive — machinery the batch path never needed, because it can simply
//!   look ahead.
//!
//! **Equivalence guarantee.** Feeding every block of a chain through
//! [`IncrementalClusterer::ingest_block`] and then calling
//! [`flush`](IncrementalClusterer::flush) yields a partition and change
//! label set identical to `Clusterer::run` over the same chain with the
//! same configuration (asserted by `tests/incremental.rs` over simulated
//! economies). Between blocks, the state matches batch clustering of the
//! ingested prefix, except that provisional labels within `wait_blocks` of
//! the tip are still pending rather than decided.
//!
//! This engine is single-threaded by design — one block at a time, one
//! union-find. The [`sharded`] submodule scales the same write path across
//! cores by partitioning addresses into shard-local state and reconciling
//! at epoch boundaries, with the same end-state guarantee.

pub mod sharded;

use crate::change::{receives_again_within, ChangeConfig, ChangeLabels, ChangeScanner, SkipReason};
use crate::cluster::{link_change, Clustering};
use crate::heuristic1::{link_tx, H1Stats};
use crate::union_find::UnionFind;
use fistful_chain::resolve::{AddressId, ResolvedBlockView, ResolvedChain, ResolvedTx, TxId};
use std::collections::VecDeque;

/// A provisional change label waiting for its wait-window to elapse.
/// Shared with the sharded pipeline ([`sharded`]), whose reconcile step
/// parks and resolves decisions with the same rules.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingDecision {
    /// The labelling transaction.
    pub(crate) tx: TxId,
    /// The candidate change output.
    pub(crate) vout: u32,
    /// The candidate change address.
    pub(crate) addr: AddressId,
    /// Height of the labelling transaction's block.
    pub(crate) height: u64,
}

/// Online H1(+H2) clustering over a block-by-block feed.
///
/// Blocks must be ingested contiguously in chain order (the engine asserts
/// it). All blocks must come from the same [`ResolvedChain`], which may keep
/// growing between calls — the engine itself stores no chain reference.
#[derive(Debug, Clone, Default)]
pub struct IncrementalClusterer {
    /// Heuristic 2 configuration; `None` runs Heuristic 1 only.
    h2: Option<ChangeConfig>,
    uf: UnionFind,
    h1_stats: H1Stats,
    scanner: ChangeScanner,
    labels: ChangeLabels,
    /// Wait-to-label decisions not yet old enough to finalize. Heights are
    /// nondecreasing front to back (pushed in chain order).
    pending: VecDeque<PendingDecision>,
    /// The next expected transaction id (contiguity check).
    next_tx: TxId,
    /// Height of the last ingested block.
    tip_height: Option<u64>,
    blocks_ingested: usize,
}

impl IncrementalClusterer {
    /// Heuristic 1 only (the prior-work baseline).
    pub fn h1_only() -> IncrementalClusterer {
        IncrementalClusterer::default()
    }

    /// Heuristic 1 plus Heuristic 2 with the given configuration.
    pub fn with_h2(config: ChangeConfig) -> IncrementalClusterer {
        IncrementalClusterer { h2: Some(config), ..Default::default() }
    }

    /// Ingests the next block, updating the partition, stats and pending
    /// queue. Panics if the block does not start at the next expected
    /// transaction (blocks must be replayed contiguously, in order).
    ///
    /// ```
    /// use fistful_core::incremental::IncrementalClusterer;
    /// use fistful_core::testutil::TestChain;
    ///
    /// let mut t = TestChain::new();
    /// let cb1 = t.coinbase(1, 50);
    /// let cb2 = t.coinbase(2, 50);
    /// t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
    ///
    /// // Feed the chain block by block; queries are valid between blocks.
    /// let mut inc = IncrementalClusterer::h1_only();
    /// for block in t.chain.blocks() {
    ///     inc.ingest_block(&block);
    /// }
    /// inc.flush(&t.chain);
    /// assert!(inc.same_cluster(t.id(1), t.id(2)));
    /// assert_eq!(inc.block_count(), t.chain.block_count());
    ///
    /// // The final state matches a one-shot batch run.
    /// let batch = fistful_core::cluster::Clusterer::h1_only().run(&t.chain);
    /// assert_eq!(inc.snapshot().assignment, batch.assignment);
    /// ```
    pub fn ingest_block(&mut self, block: &ResolvedBlockView<'_>) {
        assert_eq!(
            block.tx_start(),
            self.next_tx,
            "blocks must be ingested contiguously in chain order"
        );
        let chain = block.chain();
        for (t, tx) in block.txs() {
            self.grow_for(tx);
            link_tx(tx, &mut self.uf, &mut self.h1_stats);
            if let Some(config) = self.h2.as_ref() {
                self.labels.vout_of.push(None);
                match self.scanner.decide(chain, t, tx, config) {
                    Ok((vout, addr)) => match config.wait_blocks {
                        // Wait-to-label needs future blocks: park the
                        // decision until the window has fully elapsed.
                        Some(_) => self.pending.push_back(PendingDecision {
                            tx: t,
                            vout,
                            addr,
                            height: tx.height,
                        }),
                        None => {
                            self.labels.vout_of[t as usize] = Some(vout);
                            self.labels.labels += 1;
                            link_change(&mut self.uf, chain, t, addr);
                        }
                    },
                    Err(reason) => self.labels.note_skip(reason),
                }
                self.scanner.absorb(tx);
            }
        }
        self.next_tx = block.tx_end();
        self.tip_height = Some(block.height());
        self.blocks_ingested += 1;
        self.resolve_pending(chain, Some(block.height()));
    }

    /// Finalizes every still-pending wait-to-label decision against the
    /// history currently in `chain`, exactly as the batch pass would at the
    /// chain tip. Call when the feed has ended (or before comparing against
    /// a batch run). Treat this as terminal: it accepts labels whose wait
    /// window extends past the tip, so ingesting further blocks afterwards
    /// can diverge from what a batch run over the longer chain would say.
    pub fn flush(&mut self, chain: &ResolvedChain) {
        self.resolve_pending(chain, None);
    }

    /// Resolves pending decisions whose wait-window is fully visible: with
    /// the tip at height `H`, every block at height `<= H` has been
    /// ingested, so a decision from height `h` is decidable once
    /// `h + wait_blocks <= H`. `tip = None` finalizes everything.
    fn resolve_pending(&mut self, chain: &ResolvedChain, tip: Option<u64>) {
        let Some(config) = self.h2.as_ref() else { return };
        let Some(window) = config.wait_blocks else { return };
        while let Some(&p) = self.pending.front() {
            if let Some(h) = tip {
                if p.height.saturating_add(window) > h {
                    break; // the queue is height-sorted: nothing further is ready
                }
            }
            self.pending.pop_front();
            if receives_again_within(chain, p.addr, p.tx, window, config) {
                self.labels.note_skip(SkipReason::FailedWait);
            } else {
                self.labels.vout_of[p.tx as usize] = Some(p.vout);
                self.labels.labels += 1;
                link_change(&mut self.uf, chain, p.tx, p.addr);
            }
        }
    }

    /// Grows the union-find to cover every address `tx` mentions. Address
    /// ids are interned densely in order of first appearance, so covering
    /// the maximum id seen covers everything seen.
    fn grow_for(&mut self, tx: &ResolvedTx) {
        let max_addr = tx
            .inputs
            .iter()
            .map(|i| i.address)
            .chain(tx.outputs.iter().map(|o| o.address))
            .max();
        if let Some(m) = max_addr {
            self.uf.grow(m as usize + 1);
        }
    }

    // ----- snapshot queries (valid between blocks) -----

    /// Number of addresses seen so far.
    pub fn address_count(&self) -> usize {
        self.uf.len()
    }

    /// Number of transactions ingested so far.
    pub fn tx_count(&self) -> usize {
        self.next_tx as usize
    }

    /// Number of blocks ingested so far.
    pub fn block_count(&self) -> usize {
        self.blocks_ingested
    }

    /// Number of clusters over the addresses seen so far.
    pub fn cluster_count(&self) -> usize {
        self.uf.component_count()
    }

    /// The representative of `addr`'s cluster. Representatives are stable
    /// only as partition witnesses: two addresses are in the same cluster
    /// iff their representatives are equal (see [`same_cluster`]).
    ///
    /// [`same_cluster`]: IncrementalClusterer::same_cluster
    pub fn cluster_of(&self, addr: AddressId) -> u32 {
        self.uf.find_immutable(addr)
    }

    /// True if `a` and `b` are currently in the same cluster.
    pub fn same_cluster(&self, a: AddressId, b: AddressId) -> bool {
        self.uf.find_immutable(a) == self.uf.find_immutable(b)
    }

    /// Histogram of cluster sizes: `(size, how many clusters)` sorted by
    /// size ascending, matching [`Clustering::size_histogram`].
    pub fn size_histogram(&self) -> Vec<(u32, usize)> {
        use std::collections::{BTreeMap, HashMap};
        let mut by_root: HashMap<u32, u32> = HashMap::new();
        for x in 0..self.uf.len() as u32 {
            *by_root.entry(self.uf.find_immutable(x)).or_default() += 1;
        }
        let mut hist: BTreeMap<u32, usize> = BTreeMap::new();
        for &size in by_root.values() {
            *hist.entry(size).or_default() += 1;
        }
        hist.into_iter().collect()
    }

    /// Heuristic 1 statistics over the ingested prefix. Identical to the
    /// batch numbers in H1-only mode; with Heuristic 2 enabled, `merges`
    /// can differ from a batch run (change links interleave with later
    /// multi-input links) even though the final partition is identical.
    pub fn h1_stats(&self) -> H1Stats {
        self.h1_stats
    }

    /// Change labels decided so far (absent in H1-only mode). Labels still
    /// in the pending queue are not yet visible here.
    pub fn change_labels(&self) -> Option<&ChangeLabels> {
        self.h2.as_ref().map(|_| &self.labels)
    }

    /// Number of wait-to-label decisions still parked at the tip.
    pub fn pending_decisions(&self) -> usize {
        self.pending.len()
    }

    /// A dense snapshot of the current state, in the same form the batch
    /// [`Clusterer`](crate::cluster::Clusterer) produces.
    pub fn snapshot(&mut self) -> Clustering {
        let (assignment, sizes) = self.uf.assignments();
        Clustering {
            assignment,
            sizes,
            h1_stats: self.h1_stats,
            change_labels: self.h2.as_ref().map(|_| self.labels.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::BLOCKS_PER_DAY;
    use crate::cluster::Clusterer;
    use crate::testutil::TestChain;

    /// Replays `chain` block by block, snapshotting at the end.
    fn replay(chain: &ResolvedChain, mut inc: IncrementalClusterer) -> Clustering {
        for block in chain.blocks() {
            inc.ingest_block(&block);
        }
        inc.flush(chain);
        inc.snapshot()
    }

    /// Asserts two clusterings are the same partition with the same labels.
    fn assert_equivalent(a: &Clustering, b: &Clustering) {
        assert_eq!(a.assignment.len(), b.assignment.len());
        // Same partition ⟹ identical dense assignments: both sides label
        // clusters by order of first appearance.
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.sizes, b.sizes);
        match (&a.change_labels, &b.change_labels) {
            (Some(la), Some(lb)) => {
                assert_eq!(la.vout_of, lb.vout_of);
                assert_eq!(la.labels, lb.labels);
                assert_eq!(la.skip_counts, lb.skip_counts);
            }
            (None, None) => {}
            _ => panic!("one side ran H2, the other did not"),
        }
    }

    /// A small economy: co-spends, canonical change, a wait-window reuse.
    fn scenario() -> TestChain {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let cb3 = t.coinbase(3, 50);
        let _cb7 = t.coinbase(7, 50);
        // Co-spend 1+2 (H1), paying seen 3 and fresh 4 (H2 change).
        let tx1 = t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 70), (4, 30)]);
        // Canonical change by 3: pays seen 7, change to fresh 5.
        let tx2 = t.tx(&[(cb3, 0)], &[(7, 30), (5, 20)]);
        // Address 5 receives again soon after (fails a one-day wait).
        let _re = t.tx(&[(tx1, 1)], &[(5, 10), (7, 19)]);
        let _spend5 = t.tx(&[(tx2, 1)], &[(7, 19)]);
        t
    }

    #[test]
    fn matches_batch_h1_only() {
        let t = scenario();
        let batch = Clusterer::h1_only().run(&t.chain);
        let inc = replay(&t.chain, IncrementalClusterer::h1_only());
        assert_equivalent(&inc, &batch);
        assert_eq!(inc.h1_stats, batch.h1_stats);
    }

    #[test]
    fn matches_batch_with_h2_no_wait() {
        let t = scenario();
        let cfg = ChangeConfig::naive();
        let batch = Clusterer::with_h2(cfg.clone()).run(&t.chain);
        let inc = replay(&t.chain, IncrementalClusterer::with_h2(cfg));
        assert_equivalent(&inc, &batch);
    }

    #[test]
    fn matches_batch_with_wait_window() {
        let t = scenario();
        for window in [0, 1, 2, BLOCKS_PER_DAY] {
            let mut cfg = ChangeConfig::naive();
            cfg.wait_blocks = Some(window);
            let batch = Clusterer::with_h2(cfg.clone()).run(&t.chain);
            let inc = replay(&t.chain, IncrementalClusterer::with_h2(cfg));
            assert_equivalent(&inc, &batch);
        }
    }

    #[test]
    fn pending_queue_holds_tip_decisions_until_window_elapses() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let _cb2 = t.coinbase(2, 50);
        // Height 2: change to fresh 4 — decidable only at height 2 + 3.
        let _tx = t.tx(&[(cb1, 0)], &[(2, 30), (4, 20)]);
        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(3);
        let mut inc = IncrementalClusterer::with_h2(cfg);
        for block in t.chain.blocks() {
            inc.ingest_block(&block);
        }
        // The window (heights 2..=5) is not fully visible at tip height 2.
        assert_eq!(inc.pending_decisions(), 1);
        assert_eq!(inc.change_labels().unwrap().labels, 0);
        assert!(!inc.same_cluster(t.id(1), t.id(4)));

        // Grow the chain past the window; the decision finalizes on ingest.
        let _cb3 = t.coinbase(3, 50); // height 3
        let _cb5 = t.coinbase(5, 50); // height 4
        let _cb6 = t.coinbase(6, 50); // height 5
        for block in t.chain.blocks().skip(inc.block_count()) {
            inc.ingest_block(&block);
        }
        assert_eq!(inc.pending_decisions(), 0);
        assert_eq!(inc.change_labels().unwrap().labels, 1);
        assert!(inc.same_cluster(t.id(1), t.id(4)));
    }

    #[test]
    fn mid_stream_snapshots_are_consistent() {
        let t = scenario();
        let mut inc = IncrementalClusterer::with_h2(ChangeConfig::naive());
        for block in t.chain.blocks() {
            inc.ingest_block(&block);
            let total: usize = inc.size_histogram().iter().map(|&(s, n)| s as usize * n).sum();
            assert_eq!(total, inc.address_count());
            assert_eq!(
                inc.size_histogram().iter().map(|&(_, n)| n).sum::<usize>(),
                inc.cluster_count()
            );
        }
        assert_eq!(inc.tx_count(), t.chain.tx_count());
        assert_eq!(inc.block_count(), t.chain.block_count());
        // The snapshot agrees with the cheap queries.
        let snap = inc.snapshot();
        assert_eq!(snap.cluster_count(), inc.cluster_count());
        assert_eq!(snap.size_histogram(), inc.size_histogram());
    }

    #[test]
    #[should_panic(expected = "contiguously")]
    fn rejects_out_of_order_blocks() {
        let t = scenario();
        let mut inc = IncrementalClusterer::h1_only();
        inc.ingest_block(&t.chain.block(1));
    }
}

//! The paper's step-through-time false-positive estimator (§4.2).
//!
//! Without ground truth, the paper approximates Heuristic 2's false-positive
//! rate by observing address behaviour over time: "if an address looked like
//! a one-time change address at one point in time, and then at a later time
//! the address was used again, we considered this a false positive."
//!
//! The estimator's dice-exception setting is independent of the labelling
//! configuration, so the experiments can label naively and then walk the
//! refinement ladder: naive (≈13% in the paper) → dice exception (≈1%) →
//! wait a day (0.28%) → wait a week (0.17%).

use crate::change::{receives_again_within, ChangeConfig, ChangeLabels};
use fistful_chain::resolve::ResolvedChain;

/// Result of a false-positive estimation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpReport {
    /// Labels examined.
    pub labels: usize,
    /// Labels whose address was "used again" later.
    pub false_positives: usize,
}

impl FpReport {
    /// The false-positive rate in `[0, 1]` (zero when there are no labels).
    pub fn rate(&self) -> f64 {
        if self.labels == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.labels as f64
        }
    }
}

/// Estimates the false-positive rate of `labels` by stepping through time.
///
/// A labelled one-time change address counts as a false positive if it
/// receives again in any later transaction; when `estimator.dice_exception`
/// is set, receives funded solely by `estimator.dice_addresses` are ignored.
pub fn estimate(
    chain: &ResolvedChain,
    labels: &ChangeLabels,
    estimator: &ChangeConfig,
) -> FpReport {
    let mut report = FpReport { labels: 0, false_positives: 0 };
    for (t, _vout, addr) in labels.iter(chain) {
        report.labels += 1;
        if receives_again_within(chain, addr, t, u64::MAX, estimator) {
            report.false_positives += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::{identify, ChangeConfig};
    use crate::testutil::TestChain;
    use std::collections::HashSet;

    /// One clean change label plus one label whose address is reused later.
    fn chain_with_one_reuse() -> TestChain {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let _cb5 = t.coinbase(5, 50);
        // Label A: change to fresh 4 — never reused.
        let _tx1 = t.tx(&[(cb1, 0)], &[(5, 30), (4, 20)]);
        // Label B: change to fresh 6 — later receives again.
        let tx2 = t.tx(&[(cb2, 0)], &[(5, 30), (6, 20)]);
        let _ = tx2;
        // Reuse: address 6 receives in a later tx (from address 4's funds).
        let _tx3 = t.tx(&[(3, 1)], &[(6, 10), (5, 10)]);
        t
    }

    #[test]
    fn counts_reused_labels_as_fps() {
        let t = chain_with_one_reuse();
        let labels = identify(&t.chain, &ChangeConfig::naive());
        assert_eq!(labels.labels, 2);
        let report = estimate(&t.chain, &labels, &ChangeConfig::naive());
        assert_eq!(report.labels, 2);
        assert_eq!(report.false_positives, 1);
        assert!((report.rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dice_exception_lowers_rate() {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let dice_cb = t.coinbase(9, 50);
        let _cb5 = t.coinbase(5, 50);
        // Change to fresh 4.
        let tx1 = t.tx(&[(cb1, 0)], &[(5, 30), (4, 20)]);
        // Bet from 4, payout back to 4 funded by the dice house (addr 9).
        let _bet = t.tx(&[(tx1, 1)], &[(9, 10), (5, 10)]);
        let _payout = t.tx(&[(dice_cb, 0)], &[(4, 19), (5, 31)]);

        let labels = identify(&t.chain, &ChangeConfig::naive());
        let strict = estimate(&t.chain, &labels, &ChangeConfig::naive());
        // Both the tx1 label (addr 4, reused by payout) count; the bet tx
        // labels nothing (9 and 5 both seen).
        assert_eq!(strict.false_positives, 1);

        let mut lenient_cfg = ChangeConfig::naive();
        lenient_cfg.dice_exception = true;
        lenient_cfg.dice_addresses = HashSet::from([t.id(9)]);
        let lenient = estimate(&t.chain, &labels, &lenient_cfg);
        assert_eq!(lenient.false_positives, 0);
        assert_eq!(lenient.labels, strict.labels);
    }

    #[test]
    fn empty_labels_zero_rate() {
        let t = TestChain::new();
        let labels = ChangeLabels::default();
        let report = estimate(&t.chain, &labels, &ChangeConfig::naive());
        assert_eq!(report.labels, 0);
        assert_eq!(report.rate(), 0.0);
    }
}

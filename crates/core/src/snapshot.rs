//! Frozen, queryable cluster snapshots — the paper's "cluster once, then
//! interrogate" artifact.
//!
//! Every table and figure of the paper is a *query* against a finished
//! clustering: "which cluster holds this address, what is it called, how
//! much has it received?" A [`ClusterSnapshot`] freezes the answer — the
//! canonically renumbered partition from a [`Clustering`], the
//! [`NamingReport`] labels, and per-cluster aggregates — into one immutable
//! structure with O(1) address → [`ClusterInfo`] lookup. It holds no locks
//! and no interior mutability, so wrapping it in an
//! [`Arc`](std::sync::Arc) shares it across any number of reader threads
//! with zero synchronization (see `bench_snapshot` for measured
//! multi-thread lookup throughput).
//!
//! # Wire format (version 1)
//!
//! [`ClusterSnapshot::to_bytes`] / [`ClusterSnapshot::from_bytes`] give the
//! snapshot a versioned binary serialization built on the consensus-style
//! primitives of [`fistful_chain::encode`] (little-endian fixed-width
//! integers, canonical Bitcoin `CompactSize` counts, `CompactSize`-length-
//! prefixed UTF-8 strings). The frame is:
//!
//! | field      | bytes | contents                                        |
//! |------------|-------|-------------------------------------------------|
//! | magic      | 4     | `"FSNP"` ([`SNAPSHOT_MAGIC`])                   |
//! | version    | 1     | [`SNAPSHOT_VERSION`] (currently `1`)            |
//! | length     | 8     | payload byte length, u64 little-endian          |
//! | payload    | *n*   | the body, exactly `length` bytes (below)        |
//! | checksum   | 32    | double-SHA-256 of the payload bytes             |
//!
//! and the payload body, in field order:
//!
//! 1. `tip_height` — u64, height of the last block the clustering saw;
//! 2. `tx_count` — u64, number of transactions aggregated;
//! 3. `clusters` — `CompactSize` count, then one [`ClusterInfo`] record per
//!    cluster, in canonical cluster-id order (`0..count`). Each record is:
//!    `size` (u32), `received` (u64 satoshis), `spent` (u64 satoshis),
//!    `name` (optional string), `category` (optional string). Optional
//!    strings are a `0`/`1` presence byte followed, when present, by a
//!    `CompactSize`-length-prefixed UTF-8 string;
//! 4. `assignment` — `CompactSize` address count, then one u32 cluster id
//!    per address, indexed by [`AddressId`].
//!
//! Decoders must enforce: canonical `CompactSize` forms, UTF-8 validity,
//! every assignment entry `< cluster count`, and that each cluster's
//! `size` equals the number of addresses assigned to it. A frame whose
//! magic, version, length, or checksum does not match is rejected with the
//! corresponding typed [`SnapshotError`] before any payload is parsed.
//!
//! The double-SHA-256 checksum is computed with the workspace's own
//! [`sha256d`] — no external crates are
//! involved anywhere in the format, so the offline vendored-dependency
//! caveats in `vendor/README.md` (stand-in `rand`/`proptest`/`criterion`)
//! do not affect snapshot bytes: files written here decode identically
//! under the real registry crates.

use crate::cluster::Clustering;
use crate::naming::NamingReport;
use fistful_chain::amount::Amount;
use fistful_chain::encode::{Decodable, DecodeError, Encodable, Reader, Writer};
use fistful_chain::resolve::{AddressId, ResolvedChain};
use fistful_crypto::sha256::sha256d;

/// The four magic bytes opening every snapshot frame.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"FSNP";

/// The current wire-format version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Byte length of the frame header (magic + version + payload length).
const HEADER_LEN: usize = 4 + 1 + 8;

/// Byte length of the trailing double-SHA-256 checksum.
const CHECKSUM_LEN: usize = 32;

/// Errors from parsing a snapshot frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The first four bytes were not [`SNAPSHOT_MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte named a format this build cannot read.
    UnsupportedVersion(u8),
    /// The input ended before the declared frame was complete.
    Truncated,
    /// Bytes remained after the declared frame.
    TrailingBytes,
    /// The double-SHA-256 of the payload did not match the stored checksum.
    ChecksumMismatch,
    /// The payload failed structural decoding.
    Decode(DecodeError),
    /// The payload decoded but violated a semantic invariant.
    Inconsistent(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:02x?}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (supported: {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot frame"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Decode(e) => write!(f, "snapshot payload decode: {e}"),
            SnapshotError::Inconsistent(what) => write!(f, "inconsistent snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> SnapshotError {
        SnapshotError::Decode(e)
    }
}

/// Per-cluster aggregates: everything an address lookup should answer
/// without touching the chain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterInfo {
    /// Number of addresses in the cluster.
    pub size: u32,
    /// Total value ever received by the cluster's addresses.
    pub received: Amount,
    /// Total value ever spent by the cluster's addresses.
    pub spent: Amount,
    /// The cluster's service name from tag-vote naming, if it was named.
    pub name: Option<String>,
    /// The category of the winning name, if the cluster was named.
    pub category: Option<String>,
}

impl Encodable for ClusterInfo {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.size);
        w.u64(self.received.to_sat());
        w.u64(self.spent.to_sat());
        w.opt_string(self.name.as_deref());
        w.opt_string(self.category.as_deref());
    }
}

impl Decodable for ClusterInfo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ClusterInfo {
            size: r.u32()?,
            received: Amount::from_sat(r.u64()?),
            spent: Amount::from_sat(r.u64()?),
            name: r.opt_string()?,
            category: r.opt_string()?,
        })
    }
}

/// A frozen, immutable clustering artifact with O(1) address lookups.
///
/// Built once by [`ClusterSnapshot::build`] from a finished [`Clustering`]
/// (whose `assignments()` renumbering is already canonical: dense ids in
/// order of first address appearance), the chain the clustering ran over,
/// and the [`NamingReport`] for its tags. After that the snapshot never
/// changes — it is plain owned data, `Send + Sync`, safe to share across
/// threads via [`Arc`](std::sync::Arc) with zero locks.
///
/// # Round-trip example
///
/// ```
/// use fistful_core::cluster::Clusterer;
/// use fistful_core::naming::name_clusters;
/// use fistful_core::snapshot::ClusterSnapshot;
/// use fistful_core::tagdb::TagDb;
/// use fistful_core::testutil::TestChain;
///
/// // A two-user economy: addresses 1 and 2 co-spend, so Heuristic 1
/// // links them; address 3 stays separate.
/// let mut t = TestChain::new();
/// let cb1 = t.coinbase(1, 50);
/// let cb2 = t.coinbase(2, 50);
/// t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
///
/// let clustering = Clusterer::h1_only().run(&t.chain);
/// let names = name_clusters(&clustering, &TagDb::new());
/// let snapshot = ClusterSnapshot::build(&t.chain, &clustering, &names);
///
/// // Encode to the versioned wire format and decode it back.
/// let bytes = snapshot.to_bytes();
/// let restored = ClusterSnapshot::from_bytes(&bytes).unwrap();
/// assert_eq!(restored, snapshot);
///
/// // O(1) queries against the frozen artifact.
/// assert_eq!(restored.cluster_of(t.id(1)), restored.cluster_of(t.id(2)));
/// let info = restored.info_of_address(t.id(3)).unwrap();
/// assert_eq!(info.size, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterSnapshot {
    /// Cluster id per address (indexed by [`AddressId`]); dense canonical
    /// ids in `0..clusters.len()`.
    assignment: Vec<u32>,
    /// Aggregates per cluster (indexed by cluster id).
    clusters: Vec<ClusterInfo>,
    /// Height of the last block the clustering saw.
    tip_height: u64,
    /// Number of transactions aggregated into `received`/`spent`.
    tx_count: u64,
}

impl ClusterSnapshot {
    /// Fuses a clustering, its naming, and chain aggregates into a frozen
    /// snapshot.
    ///
    /// Panics if `clustering` does not cover exactly the addresses of
    /// `chain` (they must come from the same run).
    pub fn build(
        chain: &ResolvedChain,
        clustering: &Clustering,
        names: &NamingReport,
    ) -> ClusterSnapshot {
        assert_eq!(
            clustering.assignment.len(),
            chain.address_count(),
            "clustering and chain disagree on address count"
        );
        let mut clusters: Vec<ClusterInfo> = clustering
            .sizes
            .iter()
            .map(|&size| ClusterInfo { size, ..Default::default() })
            .collect();
        for (cluster, name) in &names.names {
            let slot = &mut clusters[*cluster as usize];
            slot.name = Some(name.clone());
            slot.category = names.categories.get(cluster).cloned();
        }
        // Received/spent totals in one chain pass.
        let mut received = vec![0u64; clusters.len()];
        let mut spent = vec![0u64; clusters.len()];
        for tx in &chain.txs {
            for input in &tx.inputs {
                let c = clustering.assignment[input.address as usize] as usize;
                spent[c] += input.value.to_sat();
            }
            for out in &tx.outputs {
                let c = clustering.assignment[out.address as usize] as usize;
                received[c] += out.value.to_sat();
            }
        }
        for (i, slot) in clusters.iter_mut().enumerate() {
            slot.received = Amount::from_sat(received[i]);
            slot.spent = Amount::from_sat(spent[i]);
        }
        let tip_height = chain.txs.last().map(|t| t.height).unwrap_or(0);
        ClusterSnapshot {
            assignment: clustering.assignment.clone(),
            clusters,
            tip_height,
            tx_count: chain.tx_count() as u64,
        }
    }

    /// [`ClusterSnapshot::build`] for a clustering that has only seen the
    /// first `tx_end` transactions of `chain` — the mid-ingest export used
    /// by `ShardedIngest` at epoch boundaries.
    ///
    /// Addresses are interned in order of first appearance, so the
    /// transactions of the prefix reference exactly the address ids
    /// `0..clustering.assignment.len()`; aggregation stops at `tx_end`
    /// instead of walking the whole chain. With
    /// `tx_end == chain.tx_count()` this is identical to `build`.
    ///
    /// Panics if `tx_end` exceeds the chain or the prefix references an
    /// address the clustering does not cover (the clustering came from a
    /// different run).
    pub fn build_at(
        chain: &ResolvedChain,
        tx_end: usize,
        clustering: &Clustering,
        names: &NamingReport,
    ) -> ClusterSnapshot {
        assert!(tx_end <= chain.tx_count(), "tx_end exceeds the chain");
        let n_addr = clustering.assignment.len();
        let mut clusters: Vec<ClusterInfo> = clustering
            .sizes
            .iter()
            .map(|&size| ClusterInfo { size, ..Default::default() })
            .collect();
        for (cluster, name) in &names.names {
            let slot = &mut clusters[*cluster as usize];
            slot.name = Some(name.clone());
            slot.category = names.categories.get(cluster).cloned();
        }
        let mut received = vec![0u64; clusters.len()];
        let mut spent = vec![0u64; clusters.len()];
        for tx in &chain.txs[..tx_end] {
            for input in &tx.inputs {
                assert!(
                    (input.address as usize) < n_addr,
                    "clustering does not cover the transaction prefix"
                );
                let c = clustering.assignment[input.address as usize] as usize;
                spent[c] += input.value.to_sat();
            }
            for out in &tx.outputs {
                assert!(
                    (out.address as usize) < n_addr,
                    "clustering does not cover the transaction prefix"
                );
                let c = clustering.assignment[out.address as usize] as usize;
                received[c] += out.value.to_sat();
            }
        }
        for (i, slot) in clusters.iter_mut().enumerate() {
            slot.received = Amount::from_sat(received[i]);
            slot.spent = Amount::from_sat(spent[i]);
        }
        let tip_height = tx_end.checked_sub(1).map(|i| chain.txs[i].height).unwrap_or(0);
        ClusterSnapshot {
            assignment: clustering.assignment.clone(),
            clusters,
            tip_height,
            tx_count: tx_end as u64,
        }
    }

    // ----- O(1) queries -----

    /// Number of addresses covered.
    pub fn address_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Height of the last block the clustering saw.
    pub fn tip_height(&self) -> u64 {
        self.tip_height
    }

    /// Number of transactions aggregated into the received/spent totals.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// The cluster containing `addr`, if the address is covered.
    pub fn cluster_of(&self, addr: AddressId) -> Option<u32> {
        self.assignment.get(addr as usize).copied()
    }

    /// True if this snapshot's dimensions match an index with the given
    /// address and transaction counts — the cheap sanity check run before
    /// pairing the frozen resolver with a transaction-graph index built
    /// from the same [`ResolvedChain`] (`fistful_flow::graph::TxGraph`
    /// exposes matching `address_count()` / `tx_count()` accessors).
    ///
    /// This is a dimension check, not a content fingerprint: two
    /// different chains can coincidentally agree on both counts, so it
    /// reliably *rejects* mismatched artifacts but cannot *prove*
    /// provenance. Pair artifacts you derived from the same chain; use
    /// this to catch wiring mistakes early.
    pub fn pairs_with_chain(&self, address_count: usize, tx_count: u64) -> bool {
        self.address_count() == address_count && self.tx_count() == tx_count
    }

    /// Aggregates of cluster `cluster`, if it exists.
    pub fn info(&self, cluster: u32) -> Option<&ClusterInfo> {
        self.clusters.get(cluster as usize)
    }

    /// Aggregates of the cluster containing `addr` — the serving-path
    /// lookup: two array reads, no hashing, no locks.
    pub fn info_of_address(&self, addr: AddressId) -> Option<&ClusterInfo> {
        let c = self.cluster_of(addr)?;
        Some(&self.clusters[c as usize])
    }

    /// The service name `addr` resolves to (its cluster's name), if any.
    pub fn service_of(&self, addr: AddressId) -> Option<&str> {
        self.info_of_address(addr)?.name.as_deref()
    }

    /// The category `addr` resolves to (its cluster's category), if any.
    pub fn category_of(&self, addr: AddressId) -> Option<&str> {
        self.info_of_address(addr)?.category.as_deref()
    }

    /// Clusters that carry a name.
    pub fn named_cluster_count(&self) -> usize {
        self.clusters.iter().filter(|c| c.name.is_some()).count()
    }

    /// Addresses covered by named clusters.
    pub fn named_address_count(&self) -> u64 {
        self.clusters
            .iter()
            .filter(|c| c.name.is_some())
            .map(|c| c.size as u64)
            .sum()
    }

    /// The largest cluster as `(cluster id, info)`, if any.
    pub fn largest_cluster(&self) -> Option<(u32, &ClusterInfo)> {
        self.clusters
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.size)
            .map(|(i, c)| (i as u32, c))
    }

    /// Cluster ids sorted by size descending (ties by id ascending) —
    /// the "top clusters" view served by `repro snapshot query`.
    pub fn clusters_by_size(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.clusters.len() as u32).collect();
        ids.sort_by_key(|&i| (std::cmp::Reverse(self.clusters[i as usize].size), i));
        ids
    }

    // ----- wire format -----

    /// Serializes the snapshot as a complete frame: magic, version,
    /// payload length, payload, double-SHA-256 checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode_to_vec();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = sha256d(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum.0);
        out
    }

    /// Parses a complete frame, verifying magic, version, length, checksum,
    /// structure, and semantic invariants — in that order, so the typed
    /// [`SnapshotError`] pinpoints what is wrong with a bad file.
    pub fn from_bytes(data: &[u8]) -> Result<ClusterSnapshot, SnapshotError> {
        if data.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        let magic: [u8; 4] = data[..4].try_into().expect("4 bytes");
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = data[4];
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let len = u64::from_le_bytes(data[5..HEADER_LEN].try_into().expect("8 bytes")) as usize;
        let framed = HEADER_LEN
            .checked_add(len)
            .and_then(|n| n.checked_add(CHECKSUM_LEN))
            .ok_or(SnapshotError::Truncated)?;
        if data.len() < framed {
            return Err(SnapshotError::Truncated);
        }
        if data.len() > framed {
            return Err(SnapshotError::TrailingBytes);
        }
        let payload = &data[HEADER_LEN..HEADER_LEN + len];
        let checksum = &data[HEADER_LEN + len..];
        if sha256d(payload).0 != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let snapshot = ClusterSnapshot::decode_all(payload)?;
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Semantic invariants a structurally valid payload must still satisfy.
    fn validate(&self) -> Result<(), SnapshotError> {
        let k = self.clusters.len() as u32;
        let mut counts = vec![0u32; self.clusters.len()];
        for &c in &self.assignment {
            if c >= k {
                return Err(SnapshotError::Inconsistent(
                    "assignment references a cluster id out of range",
                ));
            }
            counts[c as usize] += 1;
        }
        for (count, info) in counts.iter().zip(&self.clusters) {
            if *count != info.size {
                return Err(SnapshotError::Inconsistent(
                    "cluster size disagrees with assignment",
                ));
            }
        }
        Ok(())
    }

    // ----- columnar store format -----

    /// Adds the snapshot to a columnar container: the assignment column as
    /// one bulk-readable u32 segment (`snap/assignment`), the cluster
    /// table as one encoded segment (`snap/clusters`), and a `snap/meta`
    /// segment carrying the scalars and cross-check counts.
    pub fn write_store(&self, out: &mut fistful_store::StoreWriter) {
        let mut meta = Writer::new();
        meta.u64(self.tip_height);
        meta.u64(self.tx_count);
        meta.u64(self.clusters.len() as u64);
        meta.u64(self.assignment.len() as u64);
        out.segment("snap/meta", meta.into_bytes());
        let mut assign = Writer::new();
        assign.u32_slice(&self.assignment);
        out.segment("snap/assignment", assign.into_bytes());
        let mut clusters = Writer::new();
        fistful_chain::encode::encode_vec(&mut clusters, &self.clusters);
        out.segment("snap/clusters", clusters.into_bytes());
    }

    /// Reads a snapshot back from a columnar container, enforcing the
    /// same semantic invariants as [`ClusterSnapshot::from_bytes`].
    pub fn read_store(
        store: &mut fistful_store::Store,
    ) -> Result<ClusterSnapshot, fistful_store::StoreError> {
        use fistful_store::StoreError;
        let meta = store.bytes("snap/meta")?;
        let mut r = Reader::new(&meta);
        let tip_height = r.u64()?;
        let tx_count = r.u64()?;
        let cluster_count = r.u64()? as usize;
        let address_count = r.u64()? as usize;
        r.finish()?;
        let assignment = store.u32s("snap/assignment")?;
        let cluster_bytes = store.bytes("snap/clusters")?;
        let mut r = Reader::new(&cluster_bytes);
        let clusters: Vec<ClusterInfo> = fistful_chain::encode::decode_vec(&mut r)?;
        r.finish()?;
        if assignment.len() != address_count || clusters.len() != cluster_count {
            return Err(StoreError::Inconsistent("snapshot meta counts disagree with columns"));
        }
        let snapshot = ClusterSnapshot { assignment, clusters, tip_height, tx_count };
        snapshot.validate().map_err(|e| match e {
            SnapshotError::Inconsistent(what) => StoreError::Inconsistent(what),
            _ => StoreError::Inconsistent("snapshot validation failed"),
        })?;
        Ok(snapshot)
    }

    // ----- delta snapshots -----

    /// Applies one epoch's [`SnapshotDelta`] to this base, producing the
    /// snapshot the delta was diffed against. Fails with
    /// [`SnapshotError::Inconsistent`] if the delta does not cover every
    /// new address or the result violates snapshot invariants.
    pub fn apply_delta(&self, delta: &SnapshotDelta) -> Result<ClusterSnapshot, SnapshotError> {
        let new_addrs = delta.address_count as usize;
        if new_addrs < self.assignment.len() {
            return Err(SnapshotError::Inconsistent("delta shrinks the address space"));
        }
        let mut assignment = self.assignment.clone();
        let base_len = assignment.len();
        // New slots start as a sentinel the delta must overwrite: a gap
        // means the delta and base disagree about what "new" means.
        assignment.resize(new_addrs, u32::MAX);
        let mut last = None;
        for &(addr, cluster) in &delta.assign {
            if last.is_some_and(|p| p >= addr) {
                return Err(SnapshotError::Inconsistent(
                    "delta assignment entries are not strictly ascending",
                ));
            }
            last = Some(addr);
            if (addr as usize) >= new_addrs {
                return Err(SnapshotError::Inconsistent(
                    "delta assigns an address past its declared count",
                ));
            }
            assignment[addr as usize] = cluster;
        }
        if assignment[base_len..].contains(&u32::MAX) {
            return Err(SnapshotError::Inconsistent(
                "delta does not cover every new address",
            ));
        }
        let mut clusters = self.clusters.clone();
        clusters.resize(delta.cluster_count as usize, ClusterInfo::default());
        let mut last = None;
        for (id, info) in &delta.clusters {
            if last.is_some_and(|p| p >= *id) {
                return Err(SnapshotError::Inconsistent(
                    "delta cluster entries are not strictly ascending",
                ));
            }
            last = Some(*id);
            let slot = clusters.get_mut(*id as usize).ok_or(SnapshotError::Inconsistent(
                "delta updates a cluster past its declared count",
            ))?;
            *slot = info.clone();
        }
        let snapshot = ClusterSnapshot {
            assignment,
            clusters,
            tip_height: delta.tip_height,
            tx_count: delta.tx_count,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Folds a base snapshot and its per-epoch deltas back into the full
    /// snapshot — the fast-restart path. The result is **byte-identical**
    /// (same `to_bytes`, same store segments) to rebuilding the snapshot
    /// from scratch at the final epoch, which the differential tests
    /// assert.
    pub fn from_base_and_deltas(
        base: &ClusterSnapshot,
        deltas: &[SnapshotDelta],
    ) -> Result<ClusterSnapshot, SnapshotError> {
        let mut snap = base.clone();
        for delta in deltas {
            snap = snap.apply_delta(delta)?;
        }
        Ok(snap)
    }
}

/// One epoch's worth of snapshot change: everything that differs between
/// a base [`ClusterSnapshot`] and its successor.
///
/// Persisting after an incremental ingest epoch writes one of these — a
/// few new/changed assignments and cluster rows — instead of re-exporting
/// the whole O(chain) snapshot. [`ClusterSnapshot::from_base_and_deltas`]
/// folds the sequence back, byte-identical to a full export.
///
/// **Renumbering caveat:** canonical cluster ids are dense in
/// first-appearance order, so a cross-epoch merge can cascade-renumber
/// every later cluster; such a delta legitimately degrades toward a full
/// export. Epochs without cross-epoch merges — the common case the
/// incremental pipeline optimizes for — produce deltas proportional to
/// the epoch's new blocks, which the store tests assert against real
/// file sizes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotDelta {
    /// Tip height of the successor snapshot.
    pub tip_height: u64,
    /// Transaction count of the successor snapshot.
    pub tx_count: u64,
    /// Address count of the successor snapshot (the assignment array
    /// grows to this length).
    pub address_count: u64,
    /// Cluster count of the successor snapshot.
    pub cluster_count: u32,
    /// `(address id, new cluster id)` pairs, strictly ascending by
    /// address: every new address plus every existing address whose
    /// cluster changed.
    pub assign: Vec<(u32, u32)>,
    /// `(cluster id, full new row)` pairs, strictly ascending by id:
    /// every new cluster plus every existing cluster whose aggregates,
    /// size, or naming changed.
    pub clusters: Vec<(u32, ClusterInfo)>,
}

impl SnapshotDelta {
    /// Diffs two snapshots of the same growing chain (`new` must cover at
    /// least the addresses of `base`).
    ///
    /// Panics if `new` has fewer addresses than `base` — deltas only move
    /// forward.
    pub fn between(base: &ClusterSnapshot, new: &ClusterSnapshot) -> SnapshotDelta {
        assert!(
            new.assignment.len() >= base.assignment.len(),
            "delta target has fewer addresses than its base"
        );
        let mut assign = Vec::new();
        for (addr, &cluster) in new.assignment.iter().enumerate() {
            if base.assignment.get(addr) != Some(&cluster) {
                assign.push((addr as u32, cluster));
            }
        }
        let mut clusters = Vec::new();
        for (id, info) in new.clusters.iter().enumerate() {
            if base.clusters.get(id) != Some(info) {
                clusters.push((id as u32, info.clone()));
            }
        }
        SnapshotDelta {
            tip_height: new.tip_height,
            tx_count: new.tx_count,
            address_count: new.assignment.len() as u64,
            cluster_count: new.clusters.len() as u32,
            assign,
            clusters,
        }
    }

    /// True if the delta changes nothing but the scalars.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty() && self.clusters.is_empty()
    }

    /// Adds the delta to a columnar container: changed assignments as two
    /// parallel u32 columns plus the changed cluster rows.
    pub fn write_store(&self, out: &mut fistful_store::StoreWriter) {
        let mut meta = Writer::new();
        meta.u64(self.tip_height);
        meta.u64(self.tx_count);
        meta.u64(self.address_count);
        meta.u32(self.cluster_count);
        out.segment("delta/meta", meta.into_bytes());
        let addrs: Vec<u32> = self.assign.iter().map(|&(a, _)| a).collect();
        let ids: Vec<u32> = self.assign.iter().map(|&(_, c)| c).collect();
        let mut w = Writer::new();
        w.u32_slice(&addrs);
        out.segment("delta/assign_addr", w.into_bytes());
        let mut w = Writer::new();
        w.u32_slice(&ids);
        out.segment("delta/assign_cluster", w.into_bytes());
        let cids: Vec<u32> = self.clusters.iter().map(|&(id, _)| id).collect();
        let mut w = Writer::new();
        w.u32_slice(&cids);
        out.segment("delta/cluster_ids", w.into_bytes());
        let mut w = Writer::new();
        for (_, info) in &self.clusters {
            info.encode(&mut w);
        }
        out.segment("delta/cluster_infos", w.into_bytes());
    }

    /// Reads a delta back from a columnar container. Ordering and range
    /// invariants are enforced later by [`ClusterSnapshot::apply_delta`],
    /// which sees base and delta together.
    pub fn read_store(
        store: &mut fistful_store::Store,
    ) -> Result<SnapshotDelta, fistful_store::StoreError> {
        use fistful_store::StoreError;
        let meta = store.bytes("delta/meta")?;
        let mut r = Reader::new(&meta);
        let tip_height = r.u64()?;
        let tx_count = r.u64()?;
        let address_count = r.u64()?;
        let cluster_count = r.u32()?;
        r.finish()?;
        let addrs = store.u32s("delta/assign_addr")?;
        let ids = store.u32s("delta/assign_cluster")?;
        if addrs.len() != ids.len() {
            return Err(StoreError::Inconsistent("delta assignment columns disagree on length"));
        }
        let assign = addrs.into_iter().zip(ids).collect();
        let cids = store.u32s("delta/cluster_ids")?;
        let info_bytes = store.bytes("delta/cluster_infos")?;
        let mut r = Reader::new(&info_bytes);
        let mut clusters = Vec::with_capacity(cids.len());
        for id in cids {
            clusters.push((id, ClusterInfo::decode(&mut r)?));
        }
        r.finish()?;
        Ok(SnapshotDelta { tip_height, tx_count, address_count, cluster_count, assign, clusters })
    }
}

impl Encodable for ClusterSnapshot {
    /// Writes the *payload* body only — [`ClusterSnapshot::to_bytes`] adds
    /// the magic/version/length/checksum frame around it.
    fn encode(&self, w: &mut Writer) {
        w.u64(self.tip_height);
        w.u64(self.tx_count);
        fistful_chain::encode::encode_vec(w, &self.clusters);
        w.compact_size(self.assignment.len() as u64);
        // Flat copy: the assignment column is plain little-endian u32s, so
        // the staged bulk writer replaces the old per-element loop.
        w.u32_slice(&self.assignment);
    }
}

impl Decodable for ClusterSnapshot {
    /// Reads the payload body; semantic validation happens separately in
    /// [`ClusterSnapshot::from_bytes`].
    ///
    /// Both counts can legitimately exceed the generic `MAX_VEC_LEN` cap
    /// (12M+ addresses at paper scale, and cluster count can equal address
    /// count when nothing co-spends), so instead each count is bounded by
    /// what the remaining input could possibly hold — tight, and it keeps
    /// pre-allocation proportional to the actual input size.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tip_height = r.u64()?;
        let tx_count = r.u64()?;
        // A ClusterInfo is at least 22 bytes (u32 + 2×u64 + 2 flag bytes).
        let k = r.compact_size()?;
        if k > r.remaining() as u64 / 22 {
            return Err(DecodeError::OversizedCount(k));
        }
        let mut clusters = Vec::with_capacity(k as usize);
        for _ in 0..k {
            clusters.push(ClusterInfo::decode(r)?);
        }
        // Each assignment entry is exactly 4 bytes.
        let n = r.compact_size()?;
        if n > r.remaining() as u64 / 4 {
            return Err(DecodeError::OversizedCount(n));
        }
        let assignment = r.u32_vec(n as usize)?;
        Ok(ClusterSnapshot { assignment, clusters, tip_height, tx_count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::ChangeConfig;
    use crate::cluster::Clusterer;
    use crate::naming::name_clusters;
    use crate::tagdb::{Tag, TagDb, TagSource};
    use crate::testutil::TestChain;

    /// Two users: {1,2,4} via co-spend + change, {3} alone; 1 is tagged.
    fn snapshot_fixture() -> (TestChain, ClusterSnapshot) {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let _cb3 = t.coinbase(3, 50);
        t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 70), (4, 30)]);
        let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
        let mut db = TagDb::new();
        db.add(Tag {
            address: t.id(1),
            service: "Mt. Gox".into(),
            category: "exchange".into(),
            source: TagSource::OwnTransaction,
        });
        let names = name_clusters(&clustering, &db);
        let snap = ClusterSnapshot::build(&t.chain, &clustering, &names);
        (t, snap)
    }

    #[test]
    fn pairs_with_chain_checks_both_dimensions() {
        let (t, snap) = snapshot_fixture();
        let addrs = t.chain.address_count();
        let txs = t.chain.tx_count() as u64;
        assert!(snap.pairs_with_chain(addrs, txs));
        // An index over a different chain (more addresses or more
        // transactions) must be rejected in either dimension.
        assert!(!snap.pairs_with_chain(addrs + 1, txs));
        assert!(!snap.pairs_with_chain(addrs, txs + 1));
        assert!(!snap.pairs_with_chain(0, 0));
    }

    #[test]
    fn build_fuses_partition_names_and_aggregates() {
        let (t, snap) = snapshot_fixture();
        assert_eq!(snap.address_count(), t.chain.address_count());
        assert_eq!(snap.cluster_count(), 2); // {1,2,4}, {3}
        assert_eq!(snap.cluster_of(t.id(1)), snap.cluster_of(t.id(4)));
        assert_ne!(snap.cluster_of(t.id(1)), snap.cluster_of(t.id(3)));
        assert_eq!(snap.service_of(t.id(4)), Some("Mt. Gox"));
        assert_eq!(snap.category_of(t.id(2)), Some("exchange"));
        assert_eq!(snap.service_of(t.id(3)), None);
        assert_eq!(snap.named_cluster_count(), 1);
        assert_eq!(snap.named_address_count(), 3);

        // Aggregates: cluster {1,2,4} received 50+50 (coinbases) + 30
        // (change), spent 100 (the co-spend inputs).
        let gox = snap.info_of_address(t.id(1)).unwrap();
        assert_eq!(gox.size, 3);
        assert_eq!(gox.received, Amount::from_btc(130));
        assert_eq!(gox.spent, Amount::from_btc(100));
        // Cluster {3}: coinbase 50 + payment 70, never spent.
        let three = snap.info_of_address(t.id(3)).unwrap();
        assert_eq!(three.received, Amount::from_btc(120));
        assert_eq!(three.spent, Amount::ZERO);

        let (largest, info) = snap.largest_cluster().unwrap();
        assert_eq!(info.size, 3);
        assert_eq!(snap.clusters_by_size()[0], largest);
        assert_eq!(snap.tip_height(), 3);
        assert_eq!(snap.tx_count(), 4);
    }

    #[test]
    fn out_of_range_address_is_none_not_panic() {
        let (_, snap) = snapshot_fixture();
        assert_eq!(snap.cluster_of(10_000), None);
        assert!(snap.info_of_address(10_000).is_none());
        assert_eq!(snap.service_of(10_000), None);
        assert!(snap.info(10_000).is_none());
    }

    #[test]
    fn frame_round_trips_losslessly() {
        let (_, snap) = snapshot_fixture();
        let bytes = snap.to_bytes();
        assert_eq!(&bytes[..4], &SNAPSHOT_MAGIC);
        assert_eq!(bytes[4], SNAPSHOT_VERSION);
        let restored = ClusterSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = ClusterSnapshot::default();
        let restored = ClusterSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored, snap);
        assert_eq!(restored.cluster_count(), 0);
        assert!(restored.largest_cluster().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let (_, snap) = snapshot_fixture();
        let mut bytes = snap.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ClusterSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic(_))
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let (_, snap) = snapshot_fixture();
        let mut bytes = snap.to_bytes();
        bytes[4] = SNAPSHOT_VERSION + 1;
        assert_eq!(
            ClusterSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(SNAPSHOT_VERSION + 1))
        );
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let (_, snap) = snapshot_fixture();
        let bytes = snap.to_bytes();
        for cut in 0..bytes.len() {
            let err = ClusterSnapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (_, snap) = snapshot_fixture();
        let mut bytes = snap.to_bytes();
        bytes.push(0);
        assert_eq!(
            ClusterSnapshot::from_bytes(&bytes),
            Err(SnapshotError::TrailingBytes)
        );
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let (_, snap) = snapshot_fixture();
        let bytes = snap.to_bytes();
        // Flip one bit in every payload byte position; all must be caught
        // by the checksum (header and checksum corruption are caught by the
        // earlier checks, tested above).
        for i in HEADER_LEN..bytes.len() - CHECKSUM_LEN {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                ClusterSnapshot::from_bytes(&bad),
                Err(SnapshotError::ChecksumMismatch),
                "byte {i}"
            );
        }
        // Corrupting the checksum itself is also a mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(
            ClusterSnapshot::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch)
        );
    }

    #[test]
    fn declared_counts_are_bounded_by_actual_input() {
        // A tiny, correctly-checksummed frame declaring a huge cluster
        // count (and, in a second frame, a huge assignment count) must be
        // rejected before any large allocation happens.
        for huge_second_count in [false, true] {
            let mut w = Writer::new();
            w.u64(0); // tip_height
            w.u64(0); // tx_count
            if huge_second_count {
                w.compact_size(0); // clusters: none
                w.compact_size(1 << 40); // assignment: absurd
            } else {
                w.compact_size(1 << 40); // clusters: absurd
            }
            let payload = w.into_bytes();
            let mut frame = Vec::new();
            frame.extend_from_slice(&SNAPSHOT_MAGIC);
            frame.push(SNAPSHOT_VERSION);
            frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            frame.extend_from_slice(&payload);
            frame.extend_from_slice(&sha256d(&payload).0);
            assert!(
                matches!(
                    ClusterSnapshot::from_bytes(&frame),
                    Err(SnapshotError::Decode(DecodeError::OversizedCount(_)))
                ),
                "huge_second_count={huge_second_count}"
            );
        }
    }

    #[test]
    fn semantic_validation_catches_reencoded_lies() {
        let (_, snap) = snapshot_fixture();
        // A well-formed frame whose assignment points past the cluster
        // table: rebuild the frame honestly around a dishonest payload.
        let mut lying = snap.clone();
        lying.assignment[0] = 99;
        let bytes = lying.to_bytes();
        assert!(matches!(
            ClusterSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Inconsistent(_))
        ));
        // Sizes that disagree with the assignment.
        let mut lying = snap.clone();
        lying.clusters[0].size += 1;
        assert!(matches!(
            ClusterSnapshot::from_bytes(&lying.to_bytes()),
            Err(SnapshotError::Inconsistent(_))
        ));
    }

    #[test]
    fn shared_across_threads_without_locks() {
        use std::sync::Arc;
        let (_, snap) = snapshot_fixture();
        let snap = Arc::new(snap);
        let n = snap.address_count() as u32;
        let expected: Vec<Option<u32>> = (0..n).map(|a| snap.cluster_of(a)).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let snap = Arc::clone(&snap);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for round in 0..100 {
                        for a in 0..n {
                            assert_eq!(snap.cluster_of(a), expected[a as usize], "round {round}");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn store_round_trips_losslessly() {
        let (_, snap) = snapshot_fixture();
        let mut w = fistful_store::StoreWriter::new();
        snap.write_store(&mut w);
        let mut store = fistful_store::Store::open_bytes(w.to_bytes()).unwrap();
        let restored = ClusterSnapshot::read_store(&mut store).unwrap();
        assert_eq!(restored, snap);
        // And the empty snapshot.
        let mut w = fistful_store::StoreWriter::new();
        ClusterSnapshot::default().write_store(&mut w);
        let mut store = fistful_store::Store::open_bytes(w.to_bytes()).unwrap();
        assert_eq!(
            ClusterSnapshot::read_store(&mut store).unwrap(),
            ClusterSnapshot::default()
        );
    }

    #[test]
    fn store_read_rejects_semantic_lies() {
        let (_, snap) = snapshot_fixture();
        let mut lying = snap.clone();
        lying.assignment[0] = 99;
        let mut w = fistful_store::StoreWriter::new();
        lying.write_store(&mut w);
        let mut store = fistful_store::Store::open_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            ClusterSnapshot::read_store(&mut store),
            Err(fistful_store::StoreError::Inconsistent(_))
        ));
    }

    /// Grows the fixture chain by one more user and re-snapshots, giving a
    /// (base, successor) pair whose delta has both new addresses and a
    /// changed existing cluster.
    fn delta_fixture() -> (ClusterSnapshot, ClusterSnapshot) {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 100)]);
        let clustering = Clusterer::h1_only().run(&t.chain);
        let names = name_clusters(&clustering, &TagDb::new());
        let base = ClusterSnapshot::build(&t.chain, &clustering, &names);

        let cb4 = t.coinbase(4, 25);
        t.tx(&[(cb4, 0)], &[(3, 25)]); // address 3's cluster aggregates change
        let clustering = Clusterer::h1_only().run(&t.chain);
        let names = name_clusters(&clustering, &TagDb::new());
        let new = ClusterSnapshot::build(&t.chain, &clustering, &names);
        (base, new)
    }

    #[test]
    fn delta_round_trips_to_the_successor() {
        let (base, new) = delta_fixture();
        let delta = SnapshotDelta::between(&base, &new);
        assert!(!delta.is_empty());
        // New addresses (4 and its coinbase interning) appear; unchanged
        // assignments do not.
        assert!(delta.assign.len() < new.address_count());
        let applied = base.apply_delta(&delta).unwrap();
        assert_eq!(applied, new);
        // Byte-identical, not merely equal.
        assert_eq!(applied.to_bytes(), new.to_bytes());
        // Identity delta.
        let id = SnapshotDelta::between(&new, &new);
        assert!(id.is_empty());
        assert_eq!(new.apply_delta(&id).unwrap(), new);
        // Folding from the base over both steps.
        let folded = ClusterSnapshot::from_base_and_deltas(&base, &[delta, id]).unwrap();
        assert_eq!(folded.to_bytes(), new.to_bytes());
    }

    #[test]
    fn delta_store_round_trips() {
        let (base, new) = delta_fixture();
        let delta = SnapshotDelta::between(&base, &new);
        let mut w = fistful_store::StoreWriter::new();
        delta.write_store(&mut w);
        let mut store = fistful_store::Store::open_bytes(w.to_bytes()).unwrap();
        let restored = SnapshotDelta::read_store(&mut store).unwrap();
        assert_eq!(restored, delta);
        assert_eq!(base.apply_delta(&restored).unwrap().to_bytes(), new.to_bytes());
    }

    #[test]
    fn apply_delta_rejects_malformed_deltas() {
        let (base, new) = delta_fixture();
        let good = SnapshotDelta::between(&base, &new);

        // A gap: a new address the delta does not cover.
        let mut bad = good.clone();
        bad.assign.retain(|&(a, _)| (a as usize) < base.address_count());
        assert!(matches!(
            base.apply_delta(&bad),
            Err(SnapshotError::Inconsistent("delta does not cover every new address"))
        ));

        // Shrinking the address space.
        let mut bad = good.clone();
        bad.address_count = base.address_count() as u64 - 1;
        assert!(matches!(base.apply_delta(&bad), Err(SnapshotError::Inconsistent(_))));

        // Out-of-order (here: duplicate) assignment entries.
        let mut bad = good.clone();
        bad.assign.push(*bad.assign.last().unwrap());
        assert!(matches!(
            base.apply_delta(&bad),
            Err(SnapshotError::Inconsistent(
                "delta assignment entries are not strictly ascending"
            ))
        ));

        // An assignment past the declared address count.
        let mut bad = good.clone();
        bad.assign.push((bad.address_count as u32 + 7, 0));
        assert!(matches!(base.apply_delta(&bad), Err(SnapshotError::Inconsistent(_))));

        // A cluster row past the declared cluster count.
        let mut bad = good.clone();
        bad.clusters.push((bad.cluster_count + 7, ClusterInfo::default()));
        assert!(matches!(base.apply_delta(&bad), Err(SnapshotError::Inconsistent(_))));

        // Sizes that stop matching the assignment after application.
        let mut bad = good.clone();
        for (_, info) in &mut bad.clusters {
            info.size += 1;
        }
        assert!(matches!(base.apply_delta(&bad), Err(SnapshotError::Inconsistent(_))));
    }

    #[test]
    fn build_at_full_prefix_equals_build() {
        let (t, snap) = snapshot_fixture();
        let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
        let mut db = TagDb::new();
        db.add(Tag {
            address: t.id(1),
            service: "Mt. Gox".into(),
            category: "exchange".into(),
            source: TagSource::OwnTransaction,
        });
        let names = name_clusters(&clustering, &db);
        let at = ClusterSnapshot::build_at(&t.chain, t.chain.tx_count(), &clustering, &names);
        assert_eq!(at.to_bytes(), snap.to_bytes());
    }

    #[test]
    fn display_messages_are_distinct() {
        let errors = [
            SnapshotError::BadMagic(*b"XXXX"),
            SnapshotError::UnsupportedVersion(9),
            SnapshotError::Truncated,
            SnapshotError::TrailingBytes,
            SnapshotError::ChecksumMismatch,
            SnapshotError::Decode(DecodeError::UnexpectedEnd),
            SnapshotError::Inconsistent("x"),
        ];
        let mut seen = std::collections::HashSet::new();
        for e in errors {
            assert!(seen.insert(e.to_string()), "duplicate message for {e:?}");
        }
    }
}

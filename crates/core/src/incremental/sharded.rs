//! The sharded multicore ingest pipeline.
//!
//! [`IncrementalClusterer`](crate::incremental::IncrementalClusterer)
//! ingests one block at a time on one thread, which caps continuous ingest
//! at single-core speed. This module shards the write path by address and
//! reconciles at epoch boundaries:
//!
//! * **Partition.** Address `a` belongs to shard `a % N`; transaction `t`'s
//!   *home* shard is `t % N`. Each shard owns a local union-find
//!   ([`UnionFindShard`]) and a local [`ChangeScanner`] restricted to its
//!   addresses.
//! * **Scan.** Ingested blocks are buffered; every `epoch_blocks` blocks the
//!   buffered span is scanned by all shards concurrently
//!   (`std::thread::scope`). The shard owning a transaction's first input
//!   address applies its Heuristic 1 star edges — local unions when both
//!   endpoints are owned, otherwise the edge goes to the shard's outbox.
//!   The home shard computes the transaction-local half of the Heuristic 2
//!   decision (coinbase / output-count / self-change preconditions and the
//!   fresh-candidate search), and *every* shard evaluates the stateful
//!   refinement vetoes over the output addresses it owns and absorbs the
//!   transaction into its scanner.
//! * **Reconcile.** At the epoch boundary each outbox is flushed into the
//!   cross-shard [`MergeQueue`] (one mutex
//!   acquisition per shard per epoch), then a single thread replays local
//!   merge logs plus queued cross-shard edges into the canonical global
//!   union-find with a lowest-root-wins tie-break — so every cluster's
//!   representative is its minimum address id, independent of shard count
//!   and thread scheduling. Heuristic 2 verdicts are combined per
//!   transaction in the sequential precedence order (preconditions, then
//!   the ORed reused-change vetoes, then the ORed prior-self-change vetoes,
//!   then the candidate), labels are applied or parked in the wait-to-label
//!   pending queue, and pending decisions whose window has fully elapsed
//!   are finalized.
//!
//! **Equivalence guarantee.** Feeding every block of a chain through
//! [`ShardedIngest::ingest_block`] and then calling
//! [`flush`](ShardedIngest::flush) yields assignments, sizes and change
//! labels identical to batch `Clusterer::run` and to
//! `IncrementalClusterer` over the same chain with the same configuration,
//! for every shard count and epoch length — asserted by the differential
//! suites in `tests/incremental.rs` and `tests/properties.rs`. Between
//! epochs, queries reflect the last reconciled epoch boundary (buffered
//! blocks are not yet visible), unlike the per-block incremental engine.
//!
//! ```
//! use fistful_core::change::ChangeConfig;
//! use fistful_core::cluster::Clusterer;
//! use fistful_core::incremental::sharded::{IngestConfig, ShardedIngest};
//! use fistful_core::testutil::TestChain;
//!
//! let mut t = TestChain::new();
//! let cb1 = t.coinbase(1, 50);
//! let cb2 = t.coinbase(2, 50);
//! let _cb3 = t.coinbase(3, 50);
//! // Co-spend links 1+2; the fresh output 4 is the change address.
//! t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 70), (4, 30)]);
//!
//! let mut ingest = ShardedIngest::new(IngestConfig::with_h2(4, 2, ChangeConfig::naive()));
//! for block in t.chain.blocks() {
//!     ingest.ingest_block(&block);
//! }
//! ingest.flush(&t.chain);
//! assert!(ingest.same_cluster(t.id(1), t.id(4)));
//!
//! // The final state is identical to a one-shot batch run.
//! let batch = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
//! assert_eq!(ingest.snapshot().assignment, batch.assignment);
//! ```

use crate::change::{
    fresh_candidate, precondition_skip, receives_again_within, ChangeConfig, ChangeLabels,
    ChangeScanner, SkipReason,
};
use crate::cluster::Clustering;
use crate::heuristic1::H1Stats;
use crate::incremental::PendingDecision;
use crate::snapshot::{ClusterSnapshot, SnapshotDelta};
use crate::union_find::{MergeQueue, ShardedUnionFind, UnionFindShard};
use fistful_chain::resolve::{
    AddressId, BlockId, ResolvedBlockView, ResolvedChain, ResolvedSpanView, TxId,
};
use std::collections::VecDeque;

/// Configuration of the sharded ingest pipeline.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of address shards (and scan worker threads). Must be `>= 1`.
    pub shards: usize,
    /// Blocks per epoch: how many ingested blocks are buffered before a
    /// concurrent scan + reconcile runs. Must be `>= 1`.
    pub epoch_blocks: usize,
    /// Heuristic 2 configuration; `None` runs Heuristic 1 only.
    pub h2: Option<ChangeConfig>,
}

impl IngestConfig {
    /// Heuristic 1 only.
    pub fn h1_only(shards: usize, epoch_blocks: usize) -> IngestConfig {
        IngestConfig { shards, epoch_blocks, h2: None }
    }

    /// Heuristic 1 plus Heuristic 2 with the given configuration.
    pub fn with_h2(shards: usize, epoch_blocks: usize, config: ChangeConfig) -> IngestConfig {
        IngestConfig { shards, epoch_blocks, h2: Some(config) }
    }
}

/// The transaction-local Heuristic 2 verdict a home shard computes during
/// the scan; combined with the other shards' veto flags at reconcile time.
struct TxVerdict {
    /// Failed precondition (coinbase / too few outputs / self-change).
    pre: Option<SkipReason>,
    /// The fresh-candidate search result (conditions 1 + 4).
    candidate: Result<(u32, AddressId), SkipReason>,
}

/// What one shard worker brings back from an epoch scan.
struct ScanOutcome {
    /// Largest address id among this shard's home transactions (for the
    /// global union-find grow — home shards jointly cover every tx).
    max_addr: Option<AddressId>,
    /// Non-coinbase home transactions (H1 statistics).
    transactions: usize,
    /// Home transactions with two or more distinct input addresses.
    multi_input: usize,
    /// Verdicts for this shard's home transactions, in chain order.
    verdicts: Vec<TxVerdict>,
    /// Per epoch transaction (dense, in chain order): bit 0 = reused-change
    /// veto over this shard's addresses, bit 1 = prior-self-change veto.
    vetoes: Vec<u8>,
}

/// Online H1(+H2) clustering over a block-by-block feed, sharded across
/// worker threads with epoch-based reconciliation.
///
/// Blocks must be ingested contiguously in chain order from block 0 (the
/// engine asserts it). All blocks must come from the same
/// [`ResolvedChain`], which may keep growing between calls — the engine
/// itself stores no chain reference.
#[derive(Debug)]
pub struct ShardedIngest {
    config: IngestConfig,
    uf: ShardedUnionFind,
    scanners: Vec<ChangeScanner>,
    h1_stats: H1Stats,
    labels: ChangeLabels,
    pending: VecDeque<PendingDecision>,
    /// The next expected transaction id (contiguity check).
    next_tx: TxId,
    /// First block of the epoch currently being buffered.
    epoch_start_block: BlockId,
    blocks_ingested: usize,
    epochs_completed: usize,
    /// Transactions covered by the last reconcile — the prefix a
    /// mid-ingest snapshot export may aggregate over (buffered blocks are
    /// not yet visible to queries).
    reconciled_txs: TxId,
}

impl ShardedIngest {
    /// Creates the pipeline. Panics if `config.shards` or
    /// `config.epoch_blocks` is zero.
    pub fn new(config: IngestConfig) -> ShardedIngest {
        assert!(config.shards >= 1, "at least one shard is required");
        assert!(config.epoch_blocks >= 1, "epochs must span at least one block");
        let shards = config.shards;
        ShardedIngest {
            uf: ShardedUnionFind::new(shards),
            scanners: (0..shards as u32)
                .map(|s| ChangeScanner::for_shard(s, shards as u32))
                .collect(),
            config,
            h1_stats: H1Stats::default(),
            labels: ChangeLabels::default(),
            pending: VecDeque::new(),
            next_tx: 0,
            epoch_start_block: 0,
            blocks_ingested: 0,
            epochs_completed: 0,
            reconciled_txs: 0,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Ingests the next block. The block is buffered; once
    /// `epoch_blocks` blocks have accumulated, the concurrent scan and
    /// reconcile run and the buffered blocks become visible to queries.
    /// Panics if the block does not start at the next expected transaction
    /// (blocks must be replayed contiguously, in order, from block 0).
    pub fn ingest_block(&mut self, block: &ResolvedBlockView<'_>) {
        assert_eq!(
            block.tx_start(),
            self.next_tx,
            "blocks must be ingested contiguously in chain order"
        );
        self.next_tx = block.tx_end();
        self.blocks_ingested += 1;
        if self.blocks_ingested - self.epoch_start_block as usize >= self.config.epoch_blocks {
            self.process_epoch(block.chain());
        }
    }

    /// Processes any partial final epoch, then finalizes every still-pending
    /// wait-to-label decision against the history currently in `chain`,
    /// exactly as the batch pass would at the chain tip. Treat this as
    /// terminal, like
    /// [`IncrementalClusterer::flush`](crate::incremental::IncrementalClusterer::flush).
    pub fn flush(&mut self, chain: &ResolvedChain) {
        if (self.epoch_start_block as usize) < self.blocks_ingested {
            self.process_epoch(chain);
        }
        self.resolve_pending(chain, None);
    }

    /// The concurrent epoch pass: scan the buffered span on all shards,
    /// then reconcile into the global state.
    fn process_epoch(&mut self, chain: &ResolvedChain) {
        let span = chain.block_span(self.epoch_start_block..self.blocks_ingested as BlockId);
        self.epoch_start_block = self.blocks_ingested as BlockId;
        let shard_count = self.config.shards as u32;
        let h2 = self.config.h2.as_ref();

        // Scan: one worker per shard, all walking the same span.
        let (locals, queue) = self.uf.scan_parts();
        let outcomes: Vec<ScanOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = locals
                .iter_mut()
                .zip(self.scanners.iter_mut())
                .map(|(shard, scanner)| {
                    s.spawn(move || scan_shard(shard_count, shard, scanner, span, h2, queue))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        // Reconcile: grow the global forest to cover the epoch's addresses
        // (home shards jointly saw every transaction), then replay merges.
        if let Some(max_addr) = outcomes.iter().filter_map(|o| o.max_addr).max() {
            self.uf.grow(max_addr as usize + 1);
        }
        for o in &outcomes {
            self.h1_stats.transactions += o.transactions;
            self.h1_stats.multi_input_transactions += o.multi_input;
        }
        self.h1_stats.merges += self.uf.reconcile();

        // Combine per-transaction H2 verdicts in sequential precedence.
        if let Some(config) = self.config.h2.as_ref() {
            let mut cursors = vec![0usize; outcomes.len()];
            for (t, tx) in span.txs() {
                let idx = (t - span.tx_start()) as usize;
                let home = (t as usize) % outcomes.len();
                let verdict = &outcomes[home].verdicts[cursors[home]];
                cursors[home] += 1;
                let reused = outcomes.iter().any(|o| o.vetoes[idx] & 1 != 0);
                let prior = outcomes.iter().any(|o| o.vetoes[idx] & 2 != 0);

                let outcome = if let Some(reason) = verdict.pre {
                    Err(reason)
                } else if reused {
                    Err(SkipReason::ReusedChange)
                } else if prior {
                    Err(SkipReason::PriorSelfChange)
                } else {
                    verdict.candidate
                };
                self.labels.vout_of.push(None);
                match outcome {
                    Ok((vout, addr)) => match config.wait_blocks {
                        // Wait-to-label needs future blocks: park the
                        // decision until the window has fully elapsed.
                        Some(_) => self.pending.push_back(PendingDecision {
                            tx: t,
                            vout,
                            addr,
                            height: tx.height,
                        }),
                        None => {
                            self.labels.vout_of[t as usize] = Some(vout);
                            self.labels.labels += 1;
                            link_change_global(&mut self.uf, chain, t, addr);
                        }
                    },
                    Err(reason) => self.labels.note_skip(reason),
                }
            }
        }

        self.epochs_completed += 1;
        // The whole buffered span just reconciled, so the watermark is the
        // end of the last ingested block.
        self.reconciled_txs = self.next_tx;
        if let Some(tip) = span.last_height() {
            self.resolve_pending(chain, Some(tip));
        }
    }

    /// Resolves pending decisions whose wait-window is fully visible — same
    /// rules as the per-block incremental engine (`tip = None` finalizes
    /// everything).
    fn resolve_pending(&mut self, chain: &ResolvedChain, tip: Option<u64>) {
        let Some(config) = self.config.h2.as_ref() else { return };
        let Some(window) = config.wait_blocks else { return };
        while let Some(&p) = self.pending.front() {
            if let Some(h) = tip {
                if p.height.saturating_add(window) > h {
                    break; // the queue is height-sorted: nothing further is ready
                }
            }
            self.pending.pop_front();
            if receives_again_within(chain, p.addr, p.tx, window, config) {
                self.labels.note_skip(SkipReason::FailedWait);
            } else {
                self.labels.vout_of[p.tx as usize] = Some(p.vout);
                self.labels.labels += 1;
                link_change_global(&mut self.uf, chain, p.tx, p.addr);
            }
        }
    }

    // ----- queries (valid between blocks, current to the last reconcile) -----

    /// Number of addresses in the reconciled state.
    pub fn address_count(&self) -> usize {
        self.uf.len()
    }

    /// Number of transactions ingested so far (including buffered ones).
    pub fn tx_count(&self) -> usize {
        self.next_tx as usize
    }

    /// Number of blocks ingested so far (including buffered ones).
    pub fn block_count(&self) -> usize {
        self.blocks_ingested
    }

    /// Blocks buffered for the epoch in progress (not yet reconciled).
    pub fn buffered_blocks(&self) -> usize {
        self.blocks_ingested - self.epoch_start_block as usize
    }

    /// Number of scan + reconcile passes completed.
    pub fn epochs_completed(&self) -> usize {
        self.epochs_completed
    }

    /// Number of clusters in the reconciled state.
    pub fn cluster_count(&self) -> usize {
        self.uf.component_count()
    }

    /// The representative of `addr`'s cluster: always the cluster's minimum
    /// address id (lowest-root-wins reconcile), so representatives agree
    /// across runs with different shard counts and epoch lengths.
    pub fn cluster_of(&self, addr: AddressId) -> u32 {
        self.uf.find(addr)
    }

    /// True if `a` and `b` are in the same reconciled cluster.
    pub fn same_cluster(&self, a: AddressId, b: AddressId) -> bool {
        self.uf.same(a, b)
    }

    /// Heuristic 1 statistics over the reconciled prefix. Identical to the
    /// batch numbers in H1-only mode; with Heuristic 2 enabled, `merges`
    /// can differ from a batch run (change links interleave with later
    /// epochs' multi-input links) even though the final partition is
    /// identical — the same caveat the incremental engine documents.
    pub fn h1_stats(&self) -> H1Stats {
        self.h1_stats
    }

    /// Change labels decided so far (absent in H1-only mode). Labels still
    /// in the pending queue are not yet visible here.
    pub fn change_labels(&self) -> Option<&ChangeLabels> {
        self.config.h2.as_ref().map(|_| &self.labels)
    }

    /// Number of wait-to-label decisions still parked.
    pub fn pending_decisions(&self) -> usize {
        self.pending.len()
    }

    /// A dense snapshot of the reconciled state, in the same form the batch
    /// `Clusterer` produces. Call [`flush`](Self::flush) first if buffered
    /// blocks should be included.
    pub fn snapshot(&mut self) -> Clustering {
        let (assignment, sizes) = self.uf.assignments();
        Clustering {
            assignment,
            sizes,
            h1_stats: self.h1_stats,
            change_labels: self.config.h2.as_ref().map(|_| self.labels.clone()),
        }
    }

    /// Transactions covered by the last reconcile: the aggregation prefix
    /// for [`export_snapshot`](Self::export_snapshot). Equals
    /// [`tx_count`](Self::tx_count) at every epoch boundary and after
    /// [`flush`](Self::flush); lags it while blocks are buffered.
    pub fn reconciled_txs(&self) -> TxId {
        self.reconciled_txs
    }

    /// Exports the reconciled state as a frozen [`ClusterSnapshot`]: the
    /// canonical clustering, tag-vote naming against `db`, and chain
    /// aggregates over exactly the reconciled transaction prefix.
    ///
    /// Call at an epoch boundary or after [`flush`](Self::flush);
    /// buffered blocks are not included (they are not reconciled yet).
    /// After `flush`, the result is identical to
    /// [`ClusterSnapshot::build`] over a batch clustering with the same
    /// configuration — the pipeline's equivalence guarantee extended to
    /// the persisted artifact.
    pub fn export_snapshot(
        &mut self,
        chain: &ResolvedChain,
        db: &crate::tagdb::TagDb,
    ) -> ClusterSnapshot {
        let clustering = self.snapshot();
        let names = crate::naming::name_clusters(&clustering, db);
        ClusterSnapshot::build_at(chain, self.reconciled_txs as usize, &clustering, &names)
    }

    /// Exports the reconciled state as a delta against `base` (an earlier
    /// export of this same run): the successor snapshot plus the
    /// [`SnapshotDelta`] that turns `base` into it. Persisting the delta
    /// after each epoch writes O(new blocks) bytes instead of re-writing
    /// the O(chain) snapshot; `ClusterSnapshot::from_base_and_deltas`
    /// folds the files back, byte-identical to a full export.
    pub fn export_delta(
        &mut self,
        chain: &ResolvedChain,
        db: &crate::tagdb::TagDb,
        base: &ClusterSnapshot,
    ) -> (ClusterSnapshot, SnapshotDelta) {
        let new = self.export_snapshot(chain, db);
        let delta = SnapshotDelta::between(base, &new);
        (new, delta)
    }
}

/// The Heuristic 2 amplification link, applied to the canonical global
/// forest. Mirrors `cluster::link_change`, but merges lowest-root-wins so
/// reconciled representatives stay the cluster minimum.
fn link_change_global(
    uf: &mut ShardedUnionFind,
    chain: &ResolvedChain,
    tx: TxId,
    change_addr: AddressId,
) {
    if let Some(first_input) = chain.txs[tx as usize].inputs.first() {
        uf.union_global(first_input.address, change_addr);
    }
}

/// One shard's pass over an epoch span. Runs concurrently with the other
/// shards; touches only shard-local state plus (once, at the end) the
/// shared merge queue.
fn scan_shard(
    shard_count: u32,
    shard: &mut UnionFindShard,
    scanner: &mut ChangeScanner,
    span: ResolvedSpanView<'_>,
    h2: Option<&ChangeConfig>,
    queue: &MergeQueue,
) -> ScanOutcome {
    let chain = span.chain();
    let sid = shard.shard();
    let mut out = ScanOutcome {
        max_addr: None,
        transactions: 0,
        multi_input: 0,
        verdicts: Vec::new(),
        vetoes: if h2.is_some() { Vec::with_capacity(span.tx_count()) } else { Vec::new() },
    };
    for (t, tx) in span.txs() {
        let home = t % shard_count == sid;

        // Heuristic 1: the shard owning the first input's address applies
        // the star edges; the home shard counts the tx-local statistics
        // (mirroring `heuristic1::link_tx`).
        if !tx.is_coinbase {
            if home {
                out.transactions += 1;
            }
            let mut it = tx.inputs.iter();
            if let Some(first) = it.next() {
                let owned = shard.owns(first.address);
                let mut multi = false;
                for input in it {
                    if input.address != first.address {
                        multi = true;
                    }
                    if owned {
                        shard.link(first.address, input.address);
                    }
                }
                if home && multi {
                    out.multi_input += 1;
                }
            }
        }
        if home {
            let max = tx
                .inputs
                .iter()
                .map(|i| i.address)
                .chain(tx.outputs.iter().map(|o| o.address))
                .max();
            out.max_addr = out.max_addr.max(max);
        }

        // Heuristic 2: home shard takes the tx-local verdict; every shard
        // evaluates its own stateful vetoes and absorbs the transaction.
        if let Some(config) = h2 {
            let mut flags = 0u8;
            if config.skip_reused_change && scanner.reused_change_veto(tx) {
                flags |= 1;
            }
            if config.skip_prior_self_change && scanner.prior_self_change_veto(tx) {
                flags |= 2;
            }
            out.vetoes.push(flags);
            if home {
                out.verdicts.push(TxVerdict {
                    pre: precondition_skip(tx, config),
                    candidate: fresh_candidate(chain, t, tx),
                });
            }
            scanner.absorb(tx);
        }
    }
    shard.flush_outbox(queue);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::BLOCKS_PER_DAY;
    use crate::cluster::Clusterer;
    use crate::testutil::TestChain;

    /// Replays `chain` through the sharded pipeline, flushing at the end.
    fn replay(chain: &ResolvedChain, config: IngestConfig) -> (Clustering, ShardedIngest) {
        let mut ingest = ShardedIngest::new(config);
        for block in chain.blocks() {
            ingest.ingest_block(&block);
        }
        ingest.flush(chain);
        let snap = ingest.snapshot();
        (snap, ingest)
    }

    fn assert_equivalent(a: &Clustering, b: &Clustering) {
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.sizes, b.sizes);
        match (&a.change_labels, &b.change_labels) {
            (Some(la), Some(lb)) => {
                assert_eq!(la.vout_of, lb.vout_of);
                assert_eq!(la.labels, lb.labels);
                assert_eq!(la.skip_counts, lb.skip_counts);
            }
            (None, None) => {}
            _ => panic!("one side ran H2, the other did not"),
        }
    }

    /// A small economy: co-spends, canonical change, a wait-window reuse,
    /// spread over enough blocks that multi-block epochs see traffic.
    fn scenario() -> TestChain {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let cb3 = t.coinbase(3, 50);
        let _cb7 = t.coinbase(7, 50);
        let tx1 = t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 70), (4, 30)]);
        let tx2 = t.tx(&[(cb3, 0)], &[(7, 30), (5, 20)]);
        let _re = t.tx(&[(tx1, 1)], &[(5, 10), (7, 19)]);
        let _spend5 = t.tx(&[(tx2, 1)], &[(7, 19)]);
        t
    }

    #[test]
    fn matches_batch_across_shard_counts_and_epochs() {
        let t = scenario();
        let h1 = Clusterer::h1_only().run(&t.chain);
        let naive = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
        let mut waitcfg = ChangeConfig::naive();
        waitcfg.wait_blocks = Some(BLOCKS_PER_DAY);
        waitcfg.skip_reused_change = true;
        waitcfg.skip_prior_self_change = true;
        let waited = Clusterer::with_h2(waitcfg.clone()).run(&t.chain);

        for shards in [1, 2, 4, 8] {
            for epoch in [1, 3, 100] {
                let (s, ingest) = replay(&t.chain, IngestConfig::h1_only(shards, epoch));
                assert_equivalent(&s, &h1);
                // H1-only mode: the statistics coincide exactly.
                assert_eq!(s.h1_stats, h1.h1_stats, "{shards} shards, epoch {epoch}");
                assert_eq!(ingest.address_count(), t.chain.address_count());
                assert_eq!(ingest.tx_count(), t.chain.tx_count());
                assert_eq!(ingest.block_count(), t.chain.block_count());

                let (s, _) =
                    replay(&t.chain, IngestConfig::with_h2(shards, epoch, ChangeConfig::naive()));
                assert_equivalent(&s, &naive);

                let (s, ingest) =
                    replay(&t.chain, IngestConfig::with_h2(shards, epoch, waitcfg.clone()));
                assert_equivalent(&s, &waited);
                assert_eq!(ingest.pending_decisions(), 0, "flush resolves everything");
            }
        }
    }

    #[test]
    fn cluster_representatives_are_shard_count_independent() {
        let t = scenario();
        let reps: Vec<Vec<u32>> = [1usize, 2, 4, 8]
            .into_iter()
            .map(|shards| {
                let (_, ingest) =
                    replay(&t.chain, IngestConfig::with_h2(shards, 2, ChangeConfig::naive()));
                (0..t.chain.address_count() as u32).map(|a| ingest.cluster_of(a)).collect()
            })
            .collect();
        for r in &reps[1..] {
            assert_eq!(r, &reps[0]);
        }
        // And each representative is its cluster's minimum address id.
        for (a, &rep) in reps[0].iter().enumerate() {
            assert!(rep as usize <= a);
        }
    }

    #[test]
    fn queries_reflect_epoch_boundaries() {
        let t = scenario();
        let mut ingest = ShardedIngest::new(IngestConfig::h1_only(2, 3));
        let blocks: Vec<_> = t.chain.blocks().collect();
        ingest.ingest_block(&blocks[0]);
        ingest.ingest_block(&blocks[1]);
        // Two blocks buffered, no epoch yet: nothing reconciled.
        assert_eq!(ingest.buffered_blocks(), 2);
        assert_eq!(ingest.epochs_completed(), 0);
        assert_eq!(ingest.address_count(), 0);
        assert_eq!(ingest.block_count(), 2);
        ingest.ingest_block(&blocks[2]);
        // Third block completes the epoch: state catches up.
        assert_eq!(ingest.buffered_blocks(), 0);
        assert_eq!(ingest.epochs_completed(), 1);
        assert!(ingest.address_count() > 0);
        for block in &blocks[3..] {
            ingest.ingest_block(block);
        }
        // The tail is shorter than an epoch until flush picks it up.
        assert!(ingest.buffered_blocks() > 0);
        ingest.flush(&t.chain);
        assert_eq!(ingest.buffered_blocks(), 0);
        assert_eq!(ingest.address_count(), t.chain.address_count());
    }

    #[test]
    fn exported_snapshots_track_epoch_boundaries() {
        use crate::naming::name_clusters;
        use crate::tagdb::TagDb;

        let t = scenario();
        let db = TagDb::new();
        let blocks: Vec<_> = t.chain.blocks().collect();
        let mut ingest = ShardedIngest::new(IngestConfig::h1_only(2, 3));

        // First epoch boundary: the export covers exactly the reconciled
        // prefix, no more.
        for block in &blocks[..3] {
            ingest.ingest_block(block);
        }
        assert_eq!(ingest.reconciled_txs(), ingest.tx_count() as TxId);
        let base = ingest.export_snapshot(&t.chain, &db);
        assert_eq!(base.tx_count(), ingest.reconciled_txs() as u64);
        assert!(base.tx_count() < t.chain.tx_count() as u64);

        // Rest of the chain, then flush: the delta folds the base forward
        // to a snapshot byte-identical to a from-scratch batch build.
        for block in &blocks[3..] {
            ingest.ingest_block(block);
        }
        ingest.flush(&t.chain);
        let (new, delta) = ingest.export_delta(&t.chain, &db, &base);
        assert_eq!(base.apply_delta(&delta).unwrap().to_bytes(), new.to_bytes());

        let batch = Clusterer::h1_only().run(&t.chain);
        let names = name_clusters(&batch, &db);
        let full = crate::snapshot::ClusterSnapshot::build(&t.chain, &batch, &names);
        assert_eq!(new.to_bytes(), full.to_bytes());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = ShardedIngest::new(IngestConfig::h1_only(0, 4));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_zero_epoch() {
        let _ = ShardedIngest::new(IngestConfig::h1_only(4, 0));
    }

    #[test]
    #[should_panic(expected = "contiguously")]
    fn rejects_out_of_order_blocks() {
        let t = scenario();
        let mut ingest = ShardedIngest::new(IngestConfig::h1_only(2, 1));
        ingest.ingest_block(&t.chain.block(1));
    }
}

//! Disjoint-set (union-find) structures.
//!
//! [`UnionFind`] is the sequential workhorse (path halving + union by rank).
//! [`AtomicUnionFind`] is a lock-free variant (union by minimum root, CAS
//! path compression) used by the parallel clustering ablation bench.

use std::sync::atomic::{AtomicU32, Ordering};

/// Sequential disjoint-set forest with path halving and union by rank.
/// `Default` is the empty structure (grow it with [`UnionFind::grow`]).
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Grows the structure to `n` elements, adding singletons. A no-op when
    /// `n` is not larger than the current length. Used by the incremental
    /// clusterer as new addresses appear block by block.
    pub fn grow(&mut self, n: usize) {
        let old = self.parent.len();
        if n <= old {
            return;
        }
        self.parent.extend(old as u32..n as u32);
        self.rank.resize(n, 0);
        self.components += n - old;
    }

    /// Finds the representative of `x`, halving the path as it goes.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Finds without mutating (no compression); useful behind `&self`.
    pub fn find_immutable(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Produces a dense labelling: element → cluster id in `0..k`, plus the
    /// size of each cluster.
    pub fn assignments(&mut self) -> (Vec<u32>, Vec<u32>) {
        let n = self.parent.len();
        let mut label = vec![u32::MAX; n];
        let mut assignment = vec![0u32; n];
        let mut sizes: Vec<u32> = Vec::new();
        for x in 0..n as u32 {
            let root = self.find(x);
            let slot = &mut label[root as usize];
            if *slot == u32::MAX {
                *slot = sizes.len() as u32;
                sizes.push(0);
            }
            assignment[x as usize] = *slot;
            sizes[*slot as usize] += 1;
        }
        (assignment, sizes)
    }
}

/// Lock-free disjoint-set forest: union by minimum root with CAS.
///
/// Concurrent `union`/`find` calls are linearizable; ranks are not used, so
/// tree depth is kept acceptable by aggressive path compression.
pub struct AtomicUnionFind {
    parent: Vec<AtomicU32>,
}

impl AtomicUnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> AtomicUnionFind {
        AtomicUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the current representative of `x`, compressing as it goes.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp != p {
                // Path halving; failure is benign.
                let _ = self.parent[x as usize].compare_exchange(
                    p,
                    gp,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            x = p;
        }
    }

    /// Merges the sets containing `a` and `b` (smaller root wins). Returns
    /// `true` if this call performed the merge — every successful merge is
    /// reported by exactly one concurrent caller, so per-thread counts of
    /// `true` returns sum to the sequential merge count.
    pub fn union(&self, a: u32, b: u32) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        loop {
            if ra == rb {
                return false;
            }
            // Attach the larger root under the smaller (deterministic
            // tie-break keeps the structure canonical).
            let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    ra = self.find(hi);
                    rb = self.find(lo);
                }
            }
        }
    }

    /// Snapshots into a sequential [`UnionFind`]-style assignment.
    pub fn assignments(&self) -> Vec<u32> {
        (0..self.parent.len() as u32).map(|x| self.find(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn transitivity_over_long_chain() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.same(0, n as u32 - 1));
    }

    #[test]
    fn assignments_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(1, 4);
        let (assign, sizes) = uf.assignments();
        assert_eq!(assign.len(), 6);
        assert_eq!(sizes.iter().sum::<u32>(), 6);
        assert_eq!(assign[0], assign[3]);
        assert_eq!(assign[1], assign[4]);
        assert_ne!(assign[0], assign[1]);
        assert_eq!(sizes.len(), 4); // {0,3} {1,4} {2} {5}
        // Labels are dense 0..k.
        let max = *assign.iter().max().unwrap();
        assert_eq!(max as usize + 1, sizes.len());
    }

    #[test]
    fn grow_adds_singletons_preserving_merges() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        assert_eq!(uf.component_count(), 2);
        uf.grow(6);
        assert_eq!(uf.len(), 6);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.same(0, 1));
        for x in 3..6 {
            assert_eq!(uf.find(x), x);
        }
        // Growing smaller or equal is a no-op.
        uf.grow(2);
        assert_eq!(uf.len(), 6);
        // New elements merge normally.
        assert!(uf.union(1, 5));
        assert!(uf.same(0, 5));
    }

    #[test]
    fn atomic_union_reports_merges_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let n = 4096usize;
        let uf = Arc::new(AtomicUnionFind::new(n));
        let merges = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let uf = Arc::clone(&uf);
                let merges = Arc::clone(&merges);
                std::thread::spawn(move || {
                    // All threads race to link the same chain.
                    for i in 0..n as u32 - 1 {
                        if uf.union(i, i + 1) {
                            merges.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // One component ⟹ exactly n-1 successful merges, despite the race.
        assert_eq!(merges.load(Ordering::Relaxed), n - 1);
    }

    #[test]
    fn atomic_matches_sequential() {
        use std::collections::HashMap;
        let n = 1000usize;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .map(|i| (i, (i.wrapping_mul(7919) % n as u32)))
            .collect();

        let mut seq = UnionFind::new(n);
        let atomic = AtomicUnionFind::new(n);
        for &(a, b) in &edges {
            seq.union(a, b);
            atomic.union(a, b);
        }
        // Same partition: build canonical keys and compare.
        let mut seq_key = HashMap::new();
        let mut atom_key = HashMap::new();
        for x in 0..n as u32 {
            let s = seq.find(x);
            let a = atomic.find(x);
            let sk = *seq_key.entry(s).or_insert(x);
            let ak = *atom_key.entry(a).or_insert(x);
            assert_eq!(sk, ak, "element {x} disagrees");
        }
    }

    #[test]
    fn atomic_concurrent_unions() {
        use std::sync::Arc;
        let n = 10_000usize;
        let uf = Arc::new(AtomicUnionFind::new(n));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let uf = Arc::clone(&uf);
                std::thread::spawn(move || {
                    // Each thread links a strided chain; combined they form
                    // one component.
                    let mut i = t as u32;
                    while (i as usize) < n - 4 {
                        uf.union(i, i + 4);
                        uf.union(i, i + 1);
                        i += 4;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let root = uf.find(0);
        for x in 0..n as u32 {
            assert_eq!(uf.find(x), root);
        }
    }
}

//! Disjoint-set (union-find) structures.
//!
//! [`UnionFind`] is the sequential workhorse (path halving + union by rank).
//! [`AtomicUnionFind`] is a lock-free variant (union by minimum root, CAS
//! path compression) used by the parallel clustering ablation bench.
//! [`ShardedUnionFind`] partitions elements round-robin across shard-local
//! forests for the sharded ingest pipeline
//! (`crate::incremental::sharded`), reconciling local and cross-shard
//! merges into a canonical global forest at epoch boundaries.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Sequential disjoint-set forest with path halving and union by rank.
/// `Default` is the empty structure (grow it with [`UnionFind::grow`]).
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Grows the structure to `n` elements, adding singletons. A no-op when
    /// `n` is not larger than the current length. Used by the incremental
    /// clusterer as new addresses appear block by block.
    pub fn grow(&mut self, n: usize) {
        let old = self.parent.len();
        if n <= old {
            return;
        }
        self.parent.extend(old as u32..n as u32);
        self.rank.resize(n, 0);
        self.components += n - old;
    }

    /// Finds the representative of `x`, halving the path as it goes.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Finds without mutating (no compression); useful behind `&self`.
    pub fn find_immutable(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Merges like [`union`](Self::union), but with a **lowest-root-wins**
    /// tie-break instead of union by rank: the smaller root becomes the
    /// parent. A forest built exclusively with `union_min` therefore has a
    /// canonical shape property — the representative of every set is its
    /// minimum element — regardless of the order merges arrive in. The
    /// sharded ingest reconcile step relies on this to make cluster
    /// representatives independent of shard count and thread scheduling.
    pub fn union_min(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Produces a dense labelling: element → cluster id in `0..k`, plus the
    /// size of each cluster.
    pub fn assignments(&mut self) -> (Vec<u32>, Vec<u32>) {
        let n = self.parent.len();
        let mut label = vec![u32::MAX; n];
        let mut assignment = vec![0u32; n];
        let mut sizes: Vec<u32> = Vec::new();
        for x in 0..n as u32 {
            let root = self.find(x);
            let slot = &mut label[root as usize];
            if *slot == u32::MAX {
                *slot = sizes.len() as u32;
                sizes.push(0);
            }
            assignment[x as usize] = *slot;
            sizes[*slot as usize] += 1;
        }
        (assignment, sizes)
    }
}

/// Lock-free disjoint-set forest: union by minimum root with CAS.
///
/// Concurrent `union`/`find` calls are linearizable; ranks are not used, so
/// tree depth is kept acceptable by aggressive path compression.
pub struct AtomicUnionFind {
    parent: Vec<AtomicU32>,
}

impl AtomicUnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> AtomicUnionFind {
        AtomicUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Grows the structure to `n` elements, adding singletons (a no-op when
    /// `n` is not larger). Requires `&mut self` — growth is a stop-the-world
    /// operation between concurrent phases, not something racing `union`
    /// calls may do — which is exactly the epoch-boundary shape the sharded
    /// ingest pipeline has.
    pub fn grow(&mut self, n: usize) {
        let old = self.parent.len();
        if n <= old {
            return;
        }
        self.parent.extend((old as u32..n as u32).map(AtomicU32::new));
    }

    /// Finds the current representative of `x`, compressing as it goes.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp != p {
                // Path halving; failure is benign.
                let _ = self.parent[x as usize].compare_exchange(
                    p,
                    gp,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            x = p;
        }
    }

    /// Merges the sets containing `a` and `b` (smaller root wins). Returns
    /// `true` if this call performed the merge — every successful merge is
    /// reported by exactly one concurrent caller, so per-thread counts of
    /// `true` returns sum to the sequential merge count.
    pub fn union(&self, a: u32, b: u32) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        loop {
            if ra == rb {
                return false;
            }
            // Attach the larger root under the smaller (deterministic
            // tie-break keeps the structure canonical).
            let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    ra = self.find(hi);
                    rb = self.find(lo);
                }
            }
        }
    }

    /// Snapshots into a sequential [`UnionFind`]-style assignment.
    pub fn assignments(&self) -> Vec<u32> {
        (0..self.parent.len() as u32).map(|x| self.find(x)).collect()
    }
}

/// The cross-shard merge queue: pairs of global element ids whose endpoints
/// live on different shards, batched behind one mutex. Shard workers buffer
/// cross-shard edges locally during a scan and flush them here once per
/// shard per epoch ([`UnionFindShard::flush_outbox`]), so the lock is taken
/// O(shards) times per epoch, not once per edge.
#[derive(Debug, Default)]
pub struct MergeQueue {
    edges: Mutex<Vec<(u32, u32)>>,
}

impl MergeQueue {
    /// Appends a batch of edges, draining `edges`.
    pub fn push_batch(&self, edges: &mut Vec<(u32, u32)>) {
        if !edges.is_empty() {
            self.edges.lock().expect("merge queue poisoned").append(edges);
        }
    }

    fn drain(&self) -> Vec<(u32, u32)> {
        std::mem::take(&mut *self.edges.lock().expect("merge queue poisoned"))
    }
}

/// One shard of a [`ShardedUnionFind`]: the local forest over the elements
/// it owns (`x % shard_count == shard`), a log of successful local merges,
/// and an outbox of cross-shard edges awaiting the merge queue.
///
/// Local elements are stored at index `x / shard_count`, so each shard's
/// memory is proportional to its own share of the element space.
#[derive(Debug, Default)]
pub struct UnionFindShard {
    shard: u32,
    stride: u32,
    local: UnionFind,
    /// Successful local merges since the last reconcile, as global-id pairs.
    /// They form a spanning forest of the shard's own connectivity, which is
    /// all the reconcile step needs to replay it globally.
    merged: Vec<(u32, u32)>,
    /// Cross-shard edges not yet flushed to the merge queue.
    outbox: Vec<(u32, u32)>,
}

impl UnionFindShard {
    /// This shard's index.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// True if this shard owns element `x`.
    pub fn owns(&self, x: u32) -> bool {
        x % self.stride == self.shard
    }

    /// Records the edge `(a, b)`, which must originate from an element this
    /// shard owns (`a`). Both endpoints owned: merged locally (and logged if
    /// the merge succeeded). Endpoint on another shard: buffered in the
    /// outbox for the cross-shard merge queue. The local forest grows on
    /// demand as new elements appear.
    pub fn link(&mut self, a: u32, b: u32) {
        debug_assert!(self.owns(a), "edge must start on its owning shard");
        if a == b {
            return;
        }
        if self.owns(b) {
            let (la, lb) = (a / self.stride, b / self.stride);
            self.local.grow(la.max(lb) as usize + 1);
            if self.local.union(la, lb) {
                self.merged.push((a, b));
            }
        } else {
            self.outbox.push((a, b));
        }
    }

    /// Flushes buffered cross-shard edges into `queue` (one lock
    /// acquisition; a no-op when the outbox is empty). Call at the end of an
    /// epoch scan.
    pub fn flush_outbox(&mut self, queue: &MergeQueue) {
        queue.push_batch(&mut self.outbox);
    }
}

/// A union-find partitioned round-robin across `N` shard-local forests,
/// reconciled into a canonical global forest at epoch boundaries.
///
/// Built for the sharded ingest pipeline (`crate::incremental::sharded`):
/// shard workers run concurrently over disjoint [`UnionFindShard`]s
/// (obtained from [`scan_parts`](Self::scan_parts)), then a single
/// [`reconcile`](Self::reconcile) replays every shard's merge log plus the
/// queued cross-shard edges into the global forest with
/// [`UnionFind::union_min`]. Because a partition is determined by the *set*
/// of edges, not their order, and `union_min` makes every representative
/// the minimum member of its set, the reconciled state is identical for any
/// shard count and any thread interleaving.
#[derive(Debug)]
pub struct ShardedUnionFind {
    locals: Vec<UnionFindShard>,
    global: UnionFind,
    queue: MergeQueue,
}

impl ShardedUnionFind {
    /// Creates an empty structure with `shards` shard-local forests.
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> ShardedUnionFind {
        assert!(shards >= 1, "at least one shard is required");
        ShardedUnionFind {
            locals: (0..shards)
                .map(|s| UnionFindShard {
                    shard: s as u32,
                    stride: shards as u32,
                    ..Default::default()
                })
                .collect(),
            global: UnionFind::default(),
            queue: MergeQueue::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.locals.len()
    }

    /// The shard owning element `x`.
    pub fn shard_of(&self, x: u32) -> usize {
        (x as usize) % self.locals.len()
    }

    /// Number of elements in the reconciled global forest.
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// True if the global forest is empty.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// Grows the global forest to `n` elements (shard-local forests grow on
    /// demand as edges touch them).
    pub fn grow(&mut self, n: usize) {
        self.global.grow(n);
    }

    /// Splits into the per-shard forests plus the shared merge queue, for a
    /// concurrent scan: hand each worker one `&mut UnionFindShard` and the
    /// `&MergeQueue`, then call [`reconcile`](Self::reconcile) when all
    /// workers have finished (and flushed their outboxes).
    pub fn scan_parts(&mut self) -> (&mut [UnionFindShard], &MergeQueue) {
        (&mut self.locals, &self.queue)
    }

    /// Replays every shard's merge log and the queued cross-shard edges into
    /// the global forest, returning how many merges actually joined two
    /// global sets. In an H1-only ingest that count telescopes to
    /// `elements − components` over a full run, matching the batch pass
    /// exactly (order-independence of the partition).
    pub fn reconcile(&mut self) -> usize {
        let global = &mut self.global;
        let mut merges = 0;
        let mut apply = |a: u32, b: u32| {
            global.grow(a.max(b) as usize + 1);
            if global.union_min(a, b) {
                merges += 1;
            }
        };
        for shard in &mut self.locals {
            for (a, b) in shard.merged.drain(..) {
                apply(a, b);
            }
        }
        for (a, b) in self.queue.drain() {
            apply(a, b);
        }
        merges
    }

    /// Merges directly in the global forest (lowest-root-wins), growing it
    /// if needed. Used for Heuristic 2 change links, which are decided at
    /// reconcile time and never pass through the shard scan.
    pub fn union_global(&mut self, a: u32, b: u32) -> bool {
        self.global.grow(a.max(b) as usize + 1);
        self.global.union_min(a, b)
    }

    /// The representative of `x` in the reconciled global forest — always
    /// the minimum element of its set, so representatives are comparable
    /// across runs with different shard counts.
    pub fn find(&self, x: u32) -> u32 {
        self.global.find_immutable(x)
    }

    /// True if `a` and `b` are reconciled into the same set.
    pub fn same(&self, a: u32, b: u32) -> bool {
        self.global.find_immutable(a) == self.global.find_immutable(b)
    }

    /// Number of disjoint sets in the global forest.
    pub fn component_count(&self) -> usize {
        self.global.component_count()
    }

    /// Dense labelling of the global forest (see
    /// [`UnionFind::assignments`]).
    pub fn assignments(&mut self) -> (Vec<u32>, Vec<u32>) {
        self.global.assignments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn transitivity_over_long_chain() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.same(0, n as u32 - 1));
    }

    #[test]
    fn assignments_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(1, 4);
        let (assign, sizes) = uf.assignments();
        assert_eq!(assign.len(), 6);
        assert_eq!(sizes.iter().sum::<u32>(), 6);
        assert_eq!(assign[0], assign[3]);
        assert_eq!(assign[1], assign[4]);
        assert_ne!(assign[0], assign[1]);
        assert_eq!(sizes.len(), 4); // {0,3} {1,4} {2} {5}
        // Labels are dense 0..k.
        let max = *assign.iter().max().unwrap();
        assert_eq!(max as usize + 1, sizes.len());
    }

    #[test]
    fn grow_adds_singletons_preserving_merges() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        assert_eq!(uf.component_count(), 2);
        uf.grow(6);
        assert_eq!(uf.len(), 6);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.same(0, 1));
        for x in 3..6 {
            assert_eq!(uf.find(x), x);
        }
        // Growing smaller or equal is a no-op.
        uf.grow(2);
        assert_eq!(uf.len(), 6);
        // New elements merge normally.
        assert!(uf.union(1, 5));
        assert!(uf.same(0, 5));
    }

    #[test]
    fn union_min_representative_is_set_minimum() {
        // Same edges in three different orders: the representative of every
        // element must come out as its set's minimum each time.
        let edge_orders: [&[(u32, u32)]; 3] = [
            &[(5, 2), (2, 7), (1, 9), (9, 3)],
            &[(9, 3), (1, 9), (2, 7), (5, 2)],
            &[(2, 7), (9, 3), (5, 2), (1, 9)],
        ];
        for edges in edge_orders {
            let mut uf = UnionFind::new(10);
            for &(a, b) in edges {
                uf.union_min(a, b);
            }
            for x in [2, 5, 7] {
                assert_eq!(uf.find(x), 2);
            }
            for x in [1, 3, 9] {
                assert_eq!(uf.find(x), 1);
            }
            assert_eq!(uf.component_count(), 10 - 4);
        }
    }

    #[test]
    fn atomic_grow_adds_singletons() {
        let mut uf = AtomicUnionFind::new(3);
        uf.union(0, 1);
        uf.grow(6);
        assert_eq!(uf.len(), 6);
        for x in 3..6 {
            assert_eq!(uf.find(x), x);
        }
        assert_eq!(uf.find(1), uf.find(0));
        uf.grow(2); // no-op
        assert_eq!(uf.len(), 6);
        assert!(uf.union(5, 0));
        assert_eq!(uf.find(5), uf.find(1));
    }

    #[test]
    fn sharded_matches_sequential_for_every_shard_count() {
        let n = 500usize;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .map(|i| (i, i.wrapping_mul(6151) % n as u32))
            .collect();
        let mut seq = UnionFind::new(n);
        for &(a, b) in &edges {
            seq.union(a, b);
        }
        let (seq_assign, seq_sizes) = seq.assignments();

        let mut reps: Vec<Vec<u32>> = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let mut sh = ShardedUnionFind::new(shards);
            sh.grow(n);
            {
                let (locals, queue) = sh.scan_parts();
                for &(a, b) in &edges {
                    // Route each edge through the shard owning its origin.
                    let owner = (a as usize) % shards;
                    locals[owner].link(a, b);
                }
                for shard in locals {
                    shard.flush_outbox(queue);
                }
            }
            sh.reconcile();
            assert_eq!(sh.len(), n);
            // Identical partition ⟹ identical dense assignment.
            let (assign, sizes) = sh.assignments();
            assert_eq!(assign, seq_assign, "{shards} shards");
            assert_eq!(sizes, seq_sizes);
            // And identical raw representatives (the set minimum), because
            // reconcile merges lowest-root-wins.
            let r: Vec<u32> = (0..n as u32).map(|x| sh.find(x)).collect();
            for (x, &rep) in r.iter().enumerate() {
                assert!(rep as usize <= x, "representative is the set minimum");
            }
            reps.push(r);
        }
        for r in &reps[1..] {
            assert_eq!(r, &reps[0], "representatives are shard-count-independent");
        }
    }

    #[test]
    fn sharded_reconcile_counts_each_global_merge_once() {
        // A chain 0-1-2-...-9 built from edges scattered across shards:
        // total successful merges must be n-1 no matter how they arrive.
        let n = 10u32;
        let mut sh = ShardedUnionFind::new(3);
        sh.grow(n as usize);
        {
            let (locals, queue) = sh.scan_parts();
            for i in 0..n - 1 {
                locals[(i as usize) % 3].link(i, i + 1);
            }
            for shard in locals {
                shard.flush_outbox(queue);
            }
        }
        assert_eq!(sh.reconcile(), n as usize - 1);
        assert_eq!(sh.component_count(), 1);
        // Everything reconciled: a second pass merges nothing.
        assert_eq!(sh.reconcile(), 0);
        for x in 0..n {
            assert_eq!(sh.find(x), 0, "minimum element is the representative");
        }
    }

    #[test]
    fn atomic_union_reports_merges_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let n = 4096usize;
        let uf = Arc::new(AtomicUnionFind::new(n));
        let merges = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let uf = Arc::clone(&uf);
                let merges = Arc::clone(&merges);
                std::thread::spawn(move || {
                    // All threads race to link the same chain.
                    for i in 0..n as u32 - 1 {
                        if uf.union(i, i + 1) {
                            merges.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // One component ⟹ exactly n-1 successful merges, despite the race.
        assert_eq!(merges.load(Ordering::Relaxed), n - 1);
    }

    #[test]
    fn atomic_matches_sequential() {
        use std::collections::HashMap;
        let n = 1000usize;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .map(|i| (i, (i.wrapping_mul(7919) % n as u32)))
            .collect();

        let mut seq = UnionFind::new(n);
        let atomic = AtomicUnionFind::new(n);
        for &(a, b) in &edges {
            seq.union(a, b);
            atomic.union(a, b);
        }
        // Same partition: build canonical keys and compare.
        let mut seq_key = HashMap::new();
        let mut atom_key = HashMap::new();
        for x in 0..n as u32 {
            let s = seq.find(x);
            let a = atomic.find(x);
            let sk = *seq_key.entry(s).or_insert(x);
            let ak = *atom_key.entry(a).or_insert(x);
            assert_eq!(sk, ak, "element {x} disagrees");
        }
    }

    #[test]
    fn atomic_concurrent_unions() {
        use std::sync::Arc;
        let n = 10_000usize;
        let uf = Arc::new(AtomicUnionFind::new(n));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let uf = Arc::clone(&uf);
                std::thread::spawn(move || {
                    // Each thread links a strided chain; combined they form
                    // one component.
                    let mut i = t as u32;
                    while (i as usize) < n - 4 {
                        uf.union(i, i + 4);
                        uf.union(i, i + 1);
                        i += 4;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let root = uf.find(0);
        for x in 0..n as u32 {
            assert_eq!(uf.find(x), root);
        }
    }
}

//! Test-only helper for building small hand-crafted chains.

use fistful_chain::address::Address;
use fistful_chain::amount::Amount;
use fistful_chain::resolve::ResolvedChain;
use fistful_chain::transaction::{OutPoint, Transaction, TxIn, TxOut};
use fistful_chain::utxo::UtxoSet;
use fistful_crypto::hash::Hash256;

/// Incrementally builds a [`ResolvedChain`] from abstract transactions.
///
/// Addresses are small integers (mapped through [`Address::from_seed`]);
/// outputs are referenced as `(tx_handle, vout)` where `tx_handle` is the
/// index returned by [`TestChain::coinbase`] / [`TestChain::tx`]. Each
/// transaction lands in its own block (height == tx handle) unless
/// [`TestChain::tx_at`] is used.
pub struct TestChain {
    /// The resolved chain built so far.
    pub chain: ResolvedChain,
    utxos: UtxoSet,
    txids: Vec<Hash256>,
    next_height: u64,
    cb_tag: u64,
}

impl Default for TestChain {
    fn default() -> TestChain {
        TestChain::new()
    }
}

impl TestChain {
    /// An empty test chain.
    pub fn new() -> TestChain {
        TestChain {
            chain: ResolvedChain::new(),
            utxos: UtxoSet::new(),
            txids: Vec::new(),
            next_height: 0,
            cb_tag: 0,
        }
    }

    /// The address for abstract id `n`.
    pub fn addr(n: u64) -> Address {
        Address::from_seed(n)
    }

    /// The interned id of abstract address `n` (must have appeared).
    pub fn id(&self, n: u64) -> u32 {
        self.chain
            .address_id(&Self::addr(n))
            .unwrap_or_else(|| panic!("address {n} never appeared"))
    }

    /// Adds a coinbase paying `btc` to abstract address `to`. Returns the
    /// transaction handle.
    pub fn coinbase(&mut self, to: u64, btc: u64) -> usize {
        self.cb_tag += 1;
        let tx = Transaction {
            version: 1,
            inputs: vec![TxIn {
                prevout: OutPoint::null(),
                witness: self.cb_tag.to_le_bytes().to_vec(),
            }],
            outputs: vec![TxOut { value: Amount::from_btc(btc), address: Self::addr(to) }],
            lock_time: 0,
        };
        self.push(tx, None)
    }

    /// Adds a transaction spending the given `(tx_handle, vout)` outpoints
    /// and paying each `(address, btc)` output. Returns the handle.
    pub fn tx(&mut self, spends: &[(usize, u32)], outs: &[(u64, u64)]) -> usize {
        self.tx_at(spends, outs, None)
    }

    /// Like [`tx`](Self::tx) but forcing a specific height.
    pub fn tx_at(
        &mut self,
        spends: &[(usize, u32)],
        outs: &[(u64, u64)],
        height: Option<u64>,
    ) -> usize {
        let inputs = spends
            .iter()
            .map(|&(h, vout)| TxIn::unsigned(OutPoint { txid: self.txids[h], vout }))
            .collect();
        let outputs = outs
            .iter()
            .map(|&(addr, btc)| TxOut { value: Amount::from_btc(btc), address: Self::addr(addr) })
            .collect();
        let tx = Transaction { version: 1, inputs, outputs, lock_time: 0 };
        self.push(tx, height)
    }

    fn push(&mut self, tx: Transaction, height: Option<u64>) -> usize {
        let h = height.unwrap_or(self.next_height);
        self.next_height = h + 1;
        self.chain.add_tx(&tx, &self.utxos, h, h * 600);
        self.utxos.apply(&tx, h);
        self.txids.push(tx.txid());
        self.txids.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_consistent_chain() {
        let mut t = TestChain::new();
        let cb = t.coinbase(1, 50);
        let spend = t.tx(&[(cb, 0)], &[(2, 30), (3, 20)]);
        assert_eq!(t.chain.tx_count(), 2);
        assert_eq!(t.chain.txs[spend].inputs.len(), 1);
        assert_eq!(t.chain.txs[spend].outputs.len(), 2);
        assert_eq!(t.chain.txs[spend].inputs[0].address, t.id(1));
    }
}

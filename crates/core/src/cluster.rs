//! The clustering driver: Heuristic 1, optionally amplified by Heuristic 2.

use crate::change::{identify, ChangeConfig, ChangeLabels};
use crate::heuristic1::{self, H1Stats};
use crate::union_find::UnionFind;
use fistful_chain::resolve::{AddressId, ResolvedChain, TxId};

/// The Heuristic 2 amplification rule: a labelled change address joins the
/// transaction's input user (whose addresses Heuristic 1 already linked).
/// Shared by the batch [`Clusterer`] and the incremental engine so both
/// apply exactly the same link.
pub(crate) fn link_change(
    uf: &mut UnionFind,
    chain: &ResolvedChain,
    tx: TxId,
    change_addr: AddressId,
) {
    if let Some(first_input) = chain.txs[tx as usize].inputs.first() {
        uf.union(first_input.address, change_addr);
    }
}

/// Configures and runs the clustering pipeline.
#[derive(Debug, Clone, Default)]
pub struct Clusterer {
    /// Heuristic 2 configuration; `None` runs Heuristic 1 only.
    pub h2: Option<ChangeConfig>,
}

impl Clusterer {
    /// Heuristic 1 only (the prior-work baseline).
    pub fn h1_only() -> Clusterer {
        Clusterer { h2: None }
    }

    /// Heuristic 1 plus Heuristic 2 with the given configuration.
    pub fn with_h2(config: ChangeConfig) -> Clusterer {
        Clusterer { h2: Some(config) }
    }

    /// Runs the pipeline over a resolved chain.
    ///
    /// ```
    /// use fistful_core::change::ChangeConfig;
    /// use fistful_core::cluster::Clusterer;
    /// use fistful_core::testutil::TestChain;
    ///
    /// // Addresses 1 and 2 co-spend (Heuristic 1 links them), paying the
    /// // already-seen address 3 and the fresh change address 4.
    /// let mut t = TestChain::new();
    /// let cb1 = t.coinbase(1, 50);
    /// let cb2 = t.coinbase(2, 50);
    /// let _cb3 = t.coinbase(3, 50);
    /// t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 70), (4, 30)]);
    ///
    /// // Heuristic 1 only: {1,2}, {3}, {4}.
    /// let h1 = Clusterer::h1_only().run(&t.chain);
    /// assert_eq!(h1.cluster_count(), 3);
    /// assert_eq!(h1.cluster_of(t.id(1)), h1.cluster_of(t.id(2)));
    ///
    /// // Adding Heuristic 2 folds the change address in: {1,2,4}, {3}.
    /// let h2 = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
    /// assert_eq!(h2.cluster_count(), 2);
    /// assert_eq!(h2.cluster_of(t.id(1)), h2.cluster_of(t.id(4)));
    /// ```
    pub fn run(&self, chain: &ResolvedChain) -> Clustering {
        let mut uf = UnionFind::new(chain.address_count());
        let h1_stats = heuristic1::apply(chain, &mut uf);

        let change_labels = self.h2.as_ref().map(|cfg| {
            let labels = identify(chain, cfg);
            for (t, _vout, addr) in labels.iter(chain) {
                link_change(&mut uf, chain, t, addr);
            }
            labels
        });

        let (assignment, sizes) = uf.assignments();
        Clustering { assignment, sizes, h1_stats, change_labels }
    }
}

/// The result of clustering: a dense address → cluster assignment.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster id for each address (indexed by [`AddressId`]).
    pub assignment: Vec<u32>,
    /// Size of each cluster (indexed by cluster id).
    pub sizes: Vec<u32>,
    /// Heuristic 1 statistics.
    pub h1_stats: H1Stats,
    /// Heuristic 2 labels, when it ran.
    pub change_labels: Option<ChangeLabels>,
}

impl Clustering {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.sizes.len()
    }

    /// The cluster containing `addr`.
    pub fn cluster_of(&self, addr: AddressId) -> u32 {
        self.assignment[addr as usize]
    }

    /// The largest cluster as `(cluster id, size)`.
    pub fn largest_cluster(&self) -> Option<(u32, u32)> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, &s)| (i as u32, s))
    }

    /// Cluster membership lists (cluster id → addresses).
    pub fn members_by_cluster(&self) -> Vec<Vec<AddressId>> {
        let mut members = vec![Vec::new(); self.sizes.len()];
        for (addr, &c) in self.assignment.iter().enumerate() {
            members[c as usize].push(addr as AddressId);
        }
        members
    }

    /// Counts "sink" addresses — addresses that never spent — which the
    /// paper folds into its distinct-user upper bound.
    pub fn sink_count(&self, chain: &ResolvedChain) -> usize {
        (0..chain.address_count() as AddressId)
            .filter(|&a| chain.is_sink(a))
            .count()
    }

    /// Histogram of cluster sizes: `(size, how many clusters)` sorted by
    /// size ascending.
    pub fn size_histogram(&self) -> Vec<(u32, usize)> {
        use std::collections::BTreeMap;
        let mut hist: BTreeMap<u32, usize> = BTreeMap::new();
        for &s in &self.sizes {
            *hist.entry(s).or_default() += 1;
        }
        hist.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestChain;

    /// Two users: user A (addrs 1, 2) co-spends; user B (addr 3) pays A's
    /// fresh change address 4 scenario, plus a canonical change tx by A.
    fn scenario() -> TestChain {
        let mut t = TestChain::new();
        let cb1 = t.coinbase(1, 50);
        let cb2 = t.coinbase(2, 50);
        let _cb3 = t.coinbase(3, 50);
        // A co-spends 1+2 (H1 links 1-2), paying seen addr 3 and fresh 4.
        let _tx = t.tx(&[(cb1, 0), (cb2, 0)], &[(3, 70), (4, 30)]);
        t
    }

    #[test]
    fn h1_only_links_inputs_not_change() {
        let t = scenario();
        let clustering = Clusterer::h1_only().run(&t.chain);
        assert_eq!(
            clustering.cluster_of(t.id(1)),
            clustering.cluster_of(t.id(2))
        );
        assert_ne!(
            clustering.cluster_of(t.id(1)),
            clustering.cluster_of(t.id(4))
        );
        // Clusters: {1,2}, {3}, {4} → 3.
        assert_eq!(clustering.cluster_count(), 3);
        assert!(clustering.change_labels.is_none());
    }

    #[test]
    fn h2_adds_change_link() {
        let t = scenario();
        let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
        assert_eq!(
            clustering.cluster_of(t.id(1)),
            clustering.cluster_of(t.id(4)),
            "change address joins the spender"
        );
        assert_eq!(clustering.cluster_count(), 2); // {1,2,4}, {3}
        assert_eq!(clustering.change_labels.as_ref().unwrap().labels, 1);
    }

    #[test]
    fn sizes_sum_to_address_count() {
        let t = scenario();
        let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
        let total: u32 = clustering.sizes.iter().sum();
        assert_eq!(total as usize, t.chain.address_count());
        let members = clustering.members_by_cluster();
        assert_eq!(members.iter().map(Vec::len).sum::<usize>(), t.chain.address_count());
    }

    #[test]
    fn largest_cluster_and_histogram() {
        let t = scenario();
        let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(&t.chain);
        let (_, size) = clustering.largest_cluster().unwrap();
        assert_eq!(size, 3);
        let hist = clustering.size_histogram();
        assert_eq!(hist, vec![(1, 1), (3, 1)]);
    }

    #[test]
    fn sink_counting() {
        let t = scenario();
        let clustering = Clusterer::h1_only().run(&t.chain);
        // Addresses 3 and 4 never spend.
        assert_eq!(clustering.sink_count(&t.chain), 2);
    }

    #[test]
    fn empty_chain() {
        let t = TestChain::new();
        let clustering = Clusterer::h1_only().run(&t.chain);
        assert_eq!(clustering.cluster_count(), 0);
        assert!(clustering.largest_cluster().is_none());
    }
}

//! Blocks and block headers, with proof-of-work mining for tests and the
//! network simulator.

use crate::encode::{decode_vec, encode_vec, Decodable, DecodeError, Encodable, Reader, Writer};
use crate::merkle::merkle_root;
use crate::transaction::Transaction;
use fistful_crypto::hash::Hash256;
use fistful_crypto::sha256::sha256d;

/// A block header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockHeader {
    /// Format version.
    pub version: u32,
    /// Hash of the previous block (all-zero for genesis).
    pub prev_hash: Hash256,
    /// Merkle root of the block's txids.
    pub merkle_root: Hash256,
    /// Unix timestamp.
    pub time: u64,
    /// Proof-of-work nonce.
    pub nonce: u64,
}

impl BlockHeader {
    /// The block hash: double-SHA-256 of the header encoding.
    pub fn hash(&self) -> Hash256 {
        sha256d(&self.encode_to_vec())
    }

    /// True if the hash meets the proof-of-work target.
    pub fn meets_target(&self, target: &Hash256) -> bool {
        self.hash().meets_target(target)
    }
}

impl Encodable for BlockHeader {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.version);
        w.hash256(&self.prev_hash);
        w.hash256(&self.merkle_root);
        w.u64(self.time);
        w.u64(self.nonce);
    }
}

impl Decodable for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            version: r.u32()?,
            prev_hash: r.hash256()?,
            merkle_root: r.hash256()?,
            time: r.u64()?,
            nonce: r.u64()?,
        })
    }
}

/// A block: header plus transactions (coinbase first).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// The proof-of-work header.
    pub header: BlockHeader,
    /// Transactions; index 0 must be the coinbase.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// The block hash.
    pub fn hash(&self) -> Hash256 {
        self.header.hash()
    }

    /// Recomputes the merkle root over the contained transactions.
    pub fn computed_merkle_root(&self) -> Hash256 {
        let txids: Vec<Hash256> = self.transactions.iter().map(|t| t.txid()).collect();
        merkle_root(&txids)
    }

    /// Searches nonces until the header meets `target`. Returns the number
    /// of attempts. Intended for easy targets only.
    pub fn mine(&mut self, target: &Hash256) -> u64 {
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            if self.header.meets_target(target) {
                return attempts;
            }
            self.header.nonce = self.header.nonce.wrapping_add(1);
        }
    }
}

impl Encodable for Block {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        encode_vec(w, &self.transactions);
    }
}

impl Decodable for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Block {
            header: BlockHeader::decode(r)?,
            transactions: decode_vec(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::amount::Amount;
    use crate::transaction::{OutPoint, TxIn, TxOut};

    fn coinbase(height: u64) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn {
                prevout: OutPoint::null(),
                witness: height.to_le_bytes().to_vec(),
            }],
            outputs: vec![TxOut {
                value: Amount::from_btc(50),
                address: Address::from_seed(height),
            }],
            lock_time: 0,
        }
    }

    fn sample_block() -> Block {
        let txs = vec![coinbase(0)];
        let mut block = Block {
            header: BlockHeader {
                version: 1,
                prev_hash: Hash256::ZERO,
                merkle_root: Hash256::ZERO,
                time: 1_231_006_505,
                nonce: 0,
            },
            transactions: txs,
        };
        block.header.merkle_root = block.computed_merkle_root();
        block
    }

    #[test]
    fn encode_decode_round_trip() {
        let block = sample_block();
        let bytes = block.encode_to_vec();
        let decoded = Block::decode_all(&bytes).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.hash(), block.hash());
    }

    #[test]
    fn hash_commits_to_transactions_via_merkle() {
        let mut block = sample_block();
        let h1 = block.hash();
        block.transactions.push(coinbase(1));
        block.header.merkle_root = block.computed_merkle_root();
        assert_ne!(block.hash(), h1);
    }

    #[test]
    fn mining_finds_easy_target() {
        let mut block = sample_block();
        let target =
            Hash256::from_hex("0fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
                .unwrap();
        let attempts = block.mine(&target);
        assert!(block.header.meets_target(&target));
        // With a 1/16 target, success within a few hundred attempts is
        // overwhelming.
        assert!(attempts < 1000, "took {attempts} attempts");
    }

    #[test]
    fn nonce_changes_hash() {
        let mut block = sample_block();
        let h1 = block.hash();
        block.header.nonce += 1;
        assert_ne!(block.hash(), h1);
    }

    #[test]
    fn truncated_block_rejected() {
        let bytes = sample_block().encode_to_vec();
        assert!(Block::decode_all(&bytes[..bytes.len() - 1]).is_err());
    }
}

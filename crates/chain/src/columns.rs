//! The chain's resolved columns — [`ResolvedChain`] flattened into the
//! plain arrays the on-disk artifact store persists.
//!
//! A [`ResolvedChain`] is an object graph: per-transaction `Vec`s of
//! resolved inputs and outputs, interning hash maps, per-address event
//! lists. None of that belongs in a file. [`ChainColumns`] is the columnar
//! projection — one flat array per field, CSR prefix arrays
//! (`in_start`/`out_start`) delimiting each transaction's slice, exactly
//! the layout `fistful_flow::graph::TxGraph` uses in RAM — so the store
//! can write each column as one segment and a reader can load it back
//! with bulk reads instead of per-element decoding.
//!
//! The mapping is lossless in both directions:
//!
//! * [`ResolvedChain::to_columns`] flattens (pure reads, no hashing);
//! * [`ChainColumns::into_chain`] validates the columns against every
//!   structural invariant `ResolvedChain::add_tx` enforces (monotone
//!   heights, input/output cross-references, single-spend backlinks) and
//!   rebuilds the derived state — interning indexes, block spans,
//!   per-address event lists — in one replay pass.
//!
//! Redundant derived columns (`spent_by` backlinks, event lists) are *not*
//! stored: they are recomputed, so a corrupt file can desynchronize them
//! from the inputs that imply them only by failing validation.

use crate::address::Address;
use crate::amount::Amount;
use crate::resolve::{AddressId, ResolvedChain, ResolvedInput, ResolvedOutput, ResolvedTx, TxId};
use fistful_crypto::hash::{Hash160, Hash256};
use std::collections::HashMap;

/// Byte width of one address in the `address` column.
pub const ADDRESS_WIDTH: usize = 20;

/// Byte width of one txid in the `txid` column.
pub const TXID_WIDTH: usize = 32;

/// The columnar projection of a [`ResolvedChain`]: one flat array per
/// field, in [`TxId`] / flat-slot / [`AddressId`] order. See the
/// [module docs](self) for the layout contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainColumns {
    /// Per transaction: containing block height.
    pub height: Vec<u64>,
    /// Per transaction: containing block timestamp.
    pub time: Vec<u64>,
    /// Per transaction: `1` for coin generations, `0` otherwise.
    pub coinbase: Vec<u8>,
    /// Per transaction: the 32-byte txid, concatenated
    /// ([`TXID_WIDTH`] bytes each).
    pub txid: Vec<u8>,
    /// Per transaction: first input slot; length `tx_count + 1`.
    pub in_start: Vec<u32>,
    /// Per input slot: the address that owned the spent output.
    pub in_addr: Vec<u32>,
    /// Per input slot: the value of the spent output, in satoshis.
    pub in_value: Vec<u64>,
    /// Per input slot: the transaction that created the spent output.
    pub in_prev_tx: Vec<u32>,
    /// Per input slot: the output index within `in_prev_tx`.
    pub in_prev_vout: Vec<u32>,
    /// Per transaction: first output slot; length `tx_count + 1`.
    pub out_start: Vec<u32>,
    /// Per output slot: the receiving address.
    pub out_addr: Vec<u32>,
    /// Per output slot: the value, in satoshis.
    pub out_value: Vec<u64>,
    /// Per address id: the 20-byte hash160 payload, concatenated
    /// ([`ADDRESS_WIDTH`] bytes each), in interning order.
    pub address: Vec<u8>,
}

impl ChainColumns {
    /// Number of transactions described.
    pub fn tx_count(&self) -> usize {
        self.height.len()
    }

    /// Number of addresses described.
    pub fn address_count(&self) -> usize {
        self.address.len() / ADDRESS_WIDTH
    }

    /// Validates every structural invariant and rebuilds the full
    /// [`ResolvedChain`], derived state included. The error string names
    /// the first violated invariant.
    pub fn into_chain(self) -> Result<ResolvedChain, &'static str> {
        let n_tx = self.height.len();
        if self.time.len() != n_tx || self.coinbase.len() != n_tx {
            return Err("per-transaction columns disagree on length");
        }
        if self.txid.len() != n_tx * TXID_WIDTH {
            return Err("txid column length is not 32 bytes per transaction");
        }
        if self.address.len() % ADDRESS_WIDTH != 0 {
            return Err("address column length is not 20 bytes per address");
        }
        let n_addr = self.address.len() / ADDRESS_WIDTH;
        check_prefix(&self.in_start, n_tx, self.in_addr.len(), "in_start")?;
        check_prefix(&self.out_start, n_tx, self.out_addr.len(), "out_start")?;
        if self.in_value.len() != self.in_addr.len()
            || self.in_prev_tx.len() != self.in_addr.len()
            || self.in_prev_vout.len() != self.in_addr.len()
        {
            return Err("per-input columns disagree on length");
        }
        if self.out_value.len() != self.out_addr.len() {
            return Err("per-output columns disagree on length");
        }
        if self.height.windows(2).any(|w| w[0] > w[1]) {
            return Err("heights are not monotone non-decreasing");
        }
        if self.coinbase.iter().any(|&c| c > 1) {
            return Err("coinbase flag is not 0 or 1");
        }
        if self.in_addr.iter().chain(&self.out_addr).any(|&a| a as usize >= n_addr) {
            return Err("address id out of range");
        }

        // Intern table: rebuild the index, rejecting duplicate addresses.
        let mut addresses = Vec::with_capacity(n_addr);
        let mut address_index = HashMap::with_capacity(n_addr);
        for (id, chunk) in self.address.chunks_exact(ADDRESS_WIDTH).enumerate() {
            let mut payload = [0u8; ADDRESS_WIDTH];
            payload.copy_from_slice(chunk);
            let addr = Address(Hash160(payload));
            if address_index.insert(addr, id as AddressId).is_some() {
                return Err("duplicate address in the intern table");
            }
            addresses.push(addr);
        }

        // Replay pass: rebuild transactions, spent-by backlinks, the txid
        // index, block spans and the per-address event lists in the exact
        // order `add_tx` produces them.
        let mut txs: Vec<ResolvedTx> = Vec::with_capacity(n_tx);
        let mut txid_index = HashMap::with_capacity(n_tx);
        let mut block_spans: Vec<(u64, TxId)> = Vec::new();
        let mut first_seen = vec![TxId::MAX; n_addr];
        let mut received_in: Vec<Vec<TxId>> = vec![Vec::new(); n_addr];
        let mut spent_in: Vec<Vec<TxId>> = vec![Vec::new(); n_addr];
        let note_seen = |first_seen: &mut Vec<TxId>, a: u32, t: TxId| {
            let slot = &mut first_seen[a as usize];
            if *slot == TxId::MAX {
                *slot = t;
            }
        };
        for t in 0..n_tx {
            let id = t as TxId;
            let height = self.height[t];
            match block_spans.last() {
                Some(&(h, _)) if height == h => {}
                _ => block_spans.push((height, id)),
            }
            let is_coinbase = self.coinbase[t] == 1;
            let ins = self.in_start[t] as usize..self.in_start[t + 1] as usize;
            if is_coinbase && !ins.is_empty() {
                return Err("coinbase transaction has resolved inputs");
            }
            let mut inputs = Vec::with_capacity(ins.len());
            for i in ins {
                let prev_tx = self.in_prev_tx[i];
                let prev_vout = self.in_prev_vout[i];
                if prev_tx >= id {
                    return Err("input references a non-prior transaction");
                }
                let prev: &mut ResolvedTx = &mut txs[prev_tx as usize];
                let out = prev
                    .outputs
                    .get_mut(prev_vout as usize)
                    .ok_or("input vout out of range for the referenced transaction")?;
                if out.address != self.in_addr[i] || out.value.to_sat() != self.in_value[i] {
                    return Err("input address/value disagree with the spent output");
                }
                if out.spent_by.is_some() {
                    return Err("output spent twice");
                }
                out.spent_by = Some(id);
                let address = self.in_addr[i];
                inputs.push(ResolvedInput {
                    address,
                    value: Amount::from_sat(self.in_value[i]),
                    prev_tx,
                    prev_vout,
                });
                spent_in[address as usize].push(id);
                note_seen(&mut first_seen, address, id);
            }
            let outs = self.out_start[t] as usize..self.out_start[t + 1] as usize;
            let mut outputs = Vec::with_capacity(outs.len());
            for o in outs {
                let address = self.out_addr[o];
                outputs.push(ResolvedOutput {
                    address,
                    value: Amount::from_sat(self.out_value[o]),
                    spent_by: None,
                });
                received_in[address as usize].push(id);
                note_seen(&mut first_seen, address, id);
            }
            let mut txid = [0u8; TXID_WIDTH];
            txid.copy_from_slice(&self.txid[t * TXID_WIDTH..(t + 1) * TXID_WIDTH]);
            let txid = Hash256(txid);
            if txid_index.insert(txid, id).is_some() {
                return Err("duplicate txid");
            }
            txs.push(ResolvedTx {
                txid,
                height,
                time: self.time[t],
                is_coinbase,
                inputs,
                outputs,
            });
        }
        if first_seen.contains(&TxId::MAX) {
            return Err("intern table lists an address no transaction touches");
        }

        Ok(ResolvedChain {
            txs,
            addresses,
            address_index,
            txid_index,
            block_spans,
            first_seen,
            received_in,
            spent_in,
        })
    }
}

/// A CSR prefix array must have `count + 1` entries, start at zero, be
/// monotone, and end at the flat array's length.
fn check_prefix(
    prefix: &[u32],
    count: usize,
    flat_len: usize,
    what: &'static str,
) -> Result<(), &'static str> {
    if prefix.len() != count + 1 || prefix[0] != 0 {
        return Err(match what {
            "in_start" => "in_start is not a tx_count+1 prefix array from zero",
            _ => "out_start is not a tx_count+1 prefix array from zero",
        });
    }
    if prefix.windows(2).any(|w| w[0] > w[1]) || *prefix.last().unwrap() as usize != flat_len {
        return Err(match what {
            "in_start" => "in_start does not delimit the input columns",
            _ => "out_start does not delimit the output columns",
        });
    }
    Ok(())
}

impl ResolvedChain {
    /// Flattens the chain into its columnar projection. Pure reads; the
    /// inverse is [`ChainColumns::into_chain`].
    pub fn to_columns(&self) -> ChainColumns {
        let n_tx = self.tx_count();
        let mut c = ChainColumns {
            height: Vec::with_capacity(n_tx),
            time: Vec::with_capacity(n_tx),
            coinbase: Vec::with_capacity(n_tx),
            txid: Vec::with_capacity(n_tx * TXID_WIDTH),
            in_start: Vec::with_capacity(n_tx + 1),
            out_start: Vec::with_capacity(n_tx + 1),
            address: Vec::with_capacity(self.address_count() * ADDRESS_WIDTH),
            ..Default::default()
        };
        c.in_start.push(0);
        c.out_start.push(0);
        for tx in &self.txs {
            c.height.push(tx.height);
            c.time.push(tx.time);
            c.coinbase.push(tx.is_coinbase as u8);
            c.txid.extend_from_slice(&tx.txid.0);
            for input in &tx.inputs {
                c.in_addr.push(input.address);
                c.in_value.push(input.value.to_sat());
                c.in_prev_tx.push(input.prev_tx);
                c.in_prev_vout.push(input.prev_vout);
            }
            for out in &tx.outputs {
                c.out_addr.push(out.address);
                c.out_value.push(out.value.to_sat());
            }
            c.in_start.push(c.in_addr.len() as u32);
            c.out_start.push(c.out_addr.len() as u32);
        }
        for addr in &self.addresses {
            c.address.extend_from_slice(&addr.0 .0);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{OutPoint, Transaction, TxIn, TxOut};
    use crate::utxo::UtxoSet;

    /// A three-block chain with a co-spend, change, and an unspent tail.
    fn sample() -> ResolvedChain {
        let mut utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);
        let c = Address::from_seed(3);
        let cb = |tag: u64, addr| Transaction {
            version: 1,
            inputs: vec![TxIn {
                prevout: OutPoint::null(),
                witness: tag.to_le_bytes().to_vec(),
            }],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: addr }],
            lock_time: 0,
        };
        let cb1 = cb(1, a);
        rc.add_tx(&cb1, &utxos, 0, 100);
        utxos.apply(&cb1, 0);
        let cb2 = cb(2, b);
        rc.add_tx(&cb2, &utxos, 1, 700);
        utxos.apply(&cb2, 1);
        let spend = Transaction {
            version: 1,
            inputs: vec![
                TxIn::unsigned(OutPoint { txid: cb1.txid(), vout: 0 }),
                TxIn::unsigned(OutPoint { txid: cb2.txid(), vout: 0 }),
            ],
            outputs: vec![
                TxOut { value: Amount::from_btc(70), address: c },
                TxOut { value: Amount::from_btc(29), address: a },
            ],
            lock_time: 0,
        };
        rc.add_tx(&spend, &utxos, 2, 1300);
        utxos.apply(&spend, 2);
        rc
    }

    /// Everything observable must survive the round trip: transactions,
    /// backlinks, interning, block spans, event lists.
    #[test]
    fn round_trip_preserves_all_derived_state() {
        let rc = sample();
        let restored = rc.to_columns().into_chain().expect("valid columns");
        assert_eq!(restored.tx_count(), rc.tx_count());
        assert_eq!(restored.address_count(), rc.address_count());
        assert_eq!(restored.block_count(), rc.block_count());
        for (a, b) in rc.txs.iter().zip(&restored.txs) {
            assert_eq!(a.txid, b.txid);
            assert_eq!((a.height, a.time, a.is_coinbase), (b.height, b.time, b.is_coinbase));
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.outputs, b.outputs);
        }
        for id in 0..rc.address_count() as AddressId {
            let addr = rc.address(id);
            assert_eq!(restored.address(id), addr);
            assert_eq!(restored.address_id(&addr), Some(id));
            assert_eq!(restored.first_seen(id), rc.first_seen(id));
            assert_eq!(restored.received_in(id), rc.received_in(id));
            assert_eq!(restored.spent_in(id), rc.spent_in(id));
        }
        for (t, tx) in rc.txs.iter().enumerate() {
            assert_eq!(restored.tx_by_txid(&tx.txid).map(|(id, _)| id), Some(t as TxId));
        }
        let spans: Vec<_> = rc.blocks().map(|b| (b.height(), b.tx_start(), b.tx_end())).collect();
        let restored_spans: Vec<_> =
            restored.blocks().map(|b| (b.height(), b.tx_start(), b.tx_end())).collect();
        assert_eq!(spans, restored_spans);
        // And flattening again is the identity on columns.
        assert_eq!(restored.to_columns(), rc.to_columns());
    }

    #[test]
    fn empty_chain_round_trips() {
        let rc = ResolvedChain::new();
        let restored = rc.to_columns().into_chain().unwrap();
        assert_eq!(restored.tx_count(), 0);
        assert_eq!(restored.address_count(), 0);
        assert_eq!(restored.block_count(), 0);
    }

    /// Every class of corrupt column is rejected with a pointed error, not
    /// a panic or a silently wrong chain.
    #[test]
    fn corrupt_columns_are_rejected() {
        let good = sample().to_columns();
        type Corruption = (&'static str, Box<dyn Fn(&mut ChainColumns)>);
        let cases: Vec<Corruption> = vec![
            ("length", Box::new(|c| c.time.pop().map(|_| ()).unwrap())),
            ("txid column", Box::new(|c| c.txid.pop().map(|_| ()).unwrap())),
            ("20 bytes per address", Box::new(|c| c.address.pop().map(|_| ()).unwrap())),
            ("prefix array", Box::new(|c| c.in_start[0] = 1)),
            ("delimit", Box::new(|c| *c.out_start.last_mut().unwrap() += 1)),
            ("monotone", Box::new(|c| c.height[0] = 9)),
            ("coinbase flag", Box::new(|c| c.coinbase[0] = 2)),
            ("out of range", Box::new(|c| c.out_addr[0] = 999)),
            ("coinbase transaction has", Box::new(|c| {
                // Give the first coinbase an input slot.
                c.in_start[1] += 1;
                c.in_start[2] += 1;
                c.in_start[3] += 1;
                c.in_addr.insert(0, 0);
                c.in_value.insert(0, 1);
                c.in_prev_tx.insert(0, 0);
                c.in_prev_vout.insert(0, 0);
            })),
            ("non-prior", Box::new(|c| c.in_prev_tx[0] = 2)),
            ("vout out of range", Box::new(|c| c.in_prev_vout[0] = 7)),
            ("disagree with the spent output", Box::new(|c| c.in_value[0] += 1)),
            ("spent twice", Box::new(|c| {
                c.in_prev_tx[1] = c.in_prev_tx[0];
                c.in_prev_vout[1] = c.in_prev_vout[0];
                c.in_addr[1] = c.in_addr[0];
                c.in_value[1] = c.in_value[0];
            })),
            ("duplicate txid", Box::new(|c| {
                let first: Vec<u8> = c.txid[..TXID_WIDTH].to_vec();
                c.txid[TXID_WIDTH..2 * TXID_WIDTH].copy_from_slice(&first);
            })),
            ("duplicate address", Box::new(|c| {
                let first: Vec<u8> = c.address[..ADDRESS_WIDTH].to_vec();
                c.address[ADDRESS_WIDTH..2 * ADDRESS_WIDTH].copy_from_slice(&first);
            })),
            ("no transaction touches", Box::new(|c| {
                c.address.extend_from_slice(&[0xAB; ADDRESS_WIDTH]);
            })),
        ];
        for (needle, corrupt) in cases {
            let mut bad = good.clone();
            corrupt(&mut bad);
            let err = match bad.into_chain() {
                Ok(_) => panic!("corrupt columns accepted; expected {needle:?}"),
                Err(e) => e,
            };
            assert!(err.contains(needle), "expected {needle:?} in {err:?}");
        }
    }
}

//! The unspent-transaction-output set.

use crate::address::Address;
use crate::amount::Amount;
use crate::transaction::{OutPoint, Transaction};
use std::collections::HashMap;

/// Metadata for one unspent output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UtxoEntry {
    /// The value of the output.
    pub value: Amount,
    /// The owning address.
    pub address: Address,
    /// The height of the block that created it.
    pub height: u64,
    /// True if created by a coinbase (subject to maturity).
    pub coinbase: bool,
}

/// The set of all unspent outputs.
#[derive(Clone, Default)]
pub struct UtxoSet {
    entries: HashMap<OutPoint, UtxoEntry>,
}

impl UtxoSet {
    /// An empty set.
    pub fn new() -> UtxoSet {
        UtxoSet { entries: HashMap::new() }
    }

    /// Looks up an unspent output.
    pub fn get(&self, op: &OutPoint) -> Option<&UtxoEntry> {
        self.entries.get(op)
    }

    /// True if the outpoint is unspent.
    pub fn contains(&self, op: &OutPoint) -> bool {
        self.entries.contains_key(op)
    }

    /// Number of unspent outputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total value of all unspent outputs.
    pub fn total_value(&self) -> Amount {
        self.entries.values().map(|e| e.value).sum()
    }

    /// Applies a validated transaction: removes its inputs, inserts its
    /// outputs. Returns the consumed entries (for undo / fee computation).
    ///
    /// Panics if an input is not present — validation must run first.
    pub fn apply(&mut self, tx: &Transaction, height: u64) -> Vec<UtxoEntry> {
        let mut consumed = Vec::with_capacity(tx.inputs.len());
        if !tx.is_coinbase() {
            for input in &tx.inputs {
                let entry = self
                    .entries
                    .remove(&input.prevout)
                    .expect("applying tx with missing input; validate first");
                consumed.push(entry);
            }
        }
        let txid = tx.txid();
        let coinbase = tx.is_coinbase();
        for (vout, output) in tx.outputs.iter().enumerate() {
            self.entries.insert(
                OutPoint { txid, vout: vout as u32 },
                UtxoEntry {
                    value: output.value,
                    address: output.address,
                    height,
                    coinbase,
                },
            );
        }
        consumed
    }

    /// Reverses [`apply`](Self::apply): removes the transaction's outputs
    /// and restores the consumed entries.
    pub fn undo(&mut self, tx: &Transaction, consumed: &[UtxoEntry]) {
        let txid = tx.txid();
        for vout in 0..tx.outputs.len() {
            self.entries.remove(&OutPoint { txid, vout: vout as u32 });
        }
        if !tx.is_coinbase() {
            assert_eq!(consumed.len(), tx.inputs.len(), "undo data mismatch");
            for (input, entry) in tx.inputs.iter().zip(consumed) {
                self.entries.insert(input.prevout, *entry);
            }
        }
    }

    /// Iterates over all entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&OutPoint, &UtxoEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{TxIn, TxOut};
    use fistful_crypto::sha256::sha256d;

    fn coinbase_tx(tag: u64, value: Amount, addr: Address) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness: tag.to_le_bytes().to_vec() }],
            outputs: vec![TxOut { value, address: addr }],
            lock_time: 0,
        }
    }

    #[test]
    fn apply_inserts_outputs() {
        let mut set = UtxoSet::new();
        let tx = coinbase_tx(0, Amount::from_btc(50), Address::from_seed(1));
        set.apply(&tx, 0);
        assert_eq!(set.len(), 1);
        let op = OutPoint { txid: tx.txid(), vout: 0 };
        let entry = set.get(&op).unwrap();
        assert_eq!(entry.value, Amount::from_btc(50));
        assert!(entry.coinbase);
        assert_eq!(set.total_value(), Amount::from_btc(50));
    }

    #[test]
    fn spend_removes_inputs() {
        let mut set = UtxoSet::new();
        let cb = coinbase_tx(0, Amount::from_btc(50), Address::from_seed(1));
        set.apply(&cb, 0);
        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: cb.txid(), vout: 0 })],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: Address::from_seed(2) }],
            lock_time: 0,
        };
        let consumed = set.apply(&spend, 1);
        assert_eq!(consumed.len(), 1);
        assert!(!set.contains(&OutPoint { txid: cb.txid(), vout: 0 }));
        assert!(set.contains(&OutPoint { txid: spend.txid(), vout: 0 }));
        let entry = set.get(&OutPoint { txid: spend.txid(), vout: 0 }).unwrap();
        assert!(!entry.coinbase);
        assert_eq!(entry.height, 1);
    }

    #[test]
    fn undo_restores_previous_state() {
        let mut set = UtxoSet::new();
        let cb = coinbase_tx(0, Amount::from_btc(50), Address::from_seed(1));
        set.apply(&cb, 0);
        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: cb.txid(), vout: 0 })],
            outputs: vec![TxOut { value: Amount::from_btc(49), address: Address::from_seed(2) }],
            lock_time: 0,
        };
        let before: Amount = set.total_value();
        let consumed = set.apply(&spend, 1);
        set.undo(&spend, &consumed);
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_value(), before);
        assert!(set.contains(&OutPoint { txid: cb.txid(), vout: 0 }));
    }

    #[test]
    #[should_panic(expected = "missing input")]
    fn apply_missing_input_panics() {
        let mut set = UtxoSet::new();
        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: sha256d(b"nope"), vout: 0 })],
            outputs: vec![],
            lock_time: 0,
        };
        set.apply(&spend, 0);
    }
}

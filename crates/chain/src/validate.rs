//! Consensus validation of transactions and blocks.

use crate::amount::{Amount, MAX_MONEY};
use crate::block::Block;
use crate::params::Params;
use crate::transaction::{OutPoint, Transaction};
use crate::utxo::UtxoSet;
use fistful_crypto::hash::Hash256;
use std::collections::HashSet;

/// Reasons a transaction or block is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A transaction has no inputs.
    NoInputs,
    /// A transaction has no outputs.
    NoOutputs,
    /// An output value exceeds `MAX_MONEY` or the outputs overflow.
    OutputValueOutOfRange,
    /// The same outpoint is spent twice within one transaction.
    DuplicateInput(OutPoint),
    /// A non-coinbase transaction has a null-prevout input.
    UnexpectedNullPrevout,
    /// An input spends an outpoint not in the UTXO set.
    MissingInput(OutPoint),
    /// Inputs are worth less than outputs.
    InsufficientInputValue {
        /// Total value of the spent inputs.
        inputs: Amount,
        /// Total value of the created outputs.
        outputs: Amount,
    },
    /// A coinbase output is spent before maturity.
    ImmatureCoinbaseSpend {
        /// Height at which the coinbase was created.
        created: u64,
        /// Height at which the spend was attempted.
        spent: u64,
    },
    /// An ECDSA witness failed verification.
    BadSignature {
        /// Index of the offending input within the transaction.
        input_index: usize,
    },
    /// The block has no transactions.
    EmptyBlock,
    /// The first transaction is not a coinbase.
    FirstNotCoinbase,
    /// A non-first transaction is a coinbase.
    ExtraCoinbase,
    /// The header's merkle root does not match the transactions.
    BadMerkleRoot,
    /// The block hash misses the proof-of-work target.
    BadProofOfWork,
    /// The header does not connect to the current tip.
    BadPrevHash {
        /// The tip hash the header was required to reference.
        expected: Hash256,
        /// The previous-block hash the header actually carried.
        got: Hash256,
    },
    /// The coinbase claims more than subsidy + fees.
    ExcessiveCoinbase {
        /// Value the coinbase outputs claimed.
        claimed: Amount,
        /// Maximum allowed: block subsidy plus collected fees.
        allowed: Amount,
    },
    /// Two transactions in the same block spend the same outpoint.
    DoubleSpendInBlock(OutPoint),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::NoInputs => write!(f, "transaction has no inputs"),
            ValidationError::NoOutputs => write!(f, "transaction has no outputs"),
            ValidationError::OutputValueOutOfRange => write!(f, "output value out of range"),
            ValidationError::DuplicateInput(op) => write!(f, "duplicate input {op:?}"),
            ValidationError::UnexpectedNullPrevout => write!(f, "null prevout outside coinbase"),
            ValidationError::MissingInput(op) => write!(f, "missing input {op:?}"),
            ValidationError::InsufficientInputValue { inputs, outputs } => {
                write!(f, "inputs {inputs} < outputs {outputs}")
            }
            ValidationError::ImmatureCoinbaseSpend { created, spent } => {
                write!(f, "coinbase from height {created} spent at {spent}")
            }
            ValidationError::BadSignature { input_index } => {
                write!(f, "bad signature on input {input_index}")
            }
            ValidationError::EmptyBlock => write!(f, "block has no transactions"),
            ValidationError::FirstNotCoinbase => write!(f, "first tx is not a coinbase"),
            ValidationError::ExtraCoinbase => write!(f, "unexpected extra coinbase"),
            ValidationError::BadMerkleRoot => write!(f, "merkle root mismatch"),
            ValidationError::BadProofOfWork => write!(f, "proof of work below target"),
            ValidationError::BadPrevHash { expected, got } => {
                write!(f, "prev hash {got} does not match tip {expected}")
            }
            ValidationError::ExcessiveCoinbase { claimed, allowed } => {
                write!(f, "coinbase claims {claimed}, allowed {allowed}")
            }
            ValidationError::DoubleSpendInBlock(op) => {
                write!(f, "double spend within block: {op:?}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Context-free ("syntactic") transaction checks.
pub fn check_transaction(tx: &Transaction) -> Result<(), ValidationError> {
    if tx.inputs.is_empty() {
        return Err(ValidationError::NoInputs);
    }
    if tx.outputs.is_empty() {
        return Err(ValidationError::NoOutputs);
    }
    let mut total = Amount::ZERO;
    for out in &tx.outputs {
        if out.value.to_sat() > MAX_MONEY {
            return Err(ValidationError::OutputValueOutOfRange);
        }
        total = total
            .checked_add(out.value)
            .filter(|t| t.to_sat() <= MAX_MONEY)
            .ok_or(ValidationError::OutputValueOutOfRange)?;
    }
    let mut seen = HashSet::with_capacity(tx.inputs.len());
    for input in &tx.inputs {
        if !tx.is_coinbase() {
            if input.prevout.is_null() {
                return Err(ValidationError::UnexpectedNullPrevout);
            }
            if !seen.insert(input.prevout) {
                return Err(ValidationError::DuplicateInput(input.prevout));
            }
        }
    }
    Ok(())
}

/// Contextual transaction checks against the UTXO set. Returns the fee.
pub fn check_tx_inputs(
    tx: &Transaction,
    utxos: &UtxoSet,
    height: u64,
    params: &Params,
) -> Result<Amount, ValidationError> {
    if tx.is_coinbase() {
        return Ok(Amount::ZERO);
    }
    let mut input_value = Amount::ZERO;
    for (i, input) in tx.inputs.iter().enumerate() {
        let entry = utxos
            .get(&input.prevout)
            .ok_or(ValidationError::MissingInput(input.prevout))?;
        if entry.coinbase && height < entry.height + params.coinbase_maturity {
            return Err(ValidationError::ImmatureCoinbaseSpend {
                created: entry.height,
                spent: height,
            });
        }
        if params.verify_signatures && !tx.verify_input(i, &entry.address) {
            return Err(ValidationError::BadSignature { input_index: i });
        }
        input_value = input_value
            .checked_add(entry.value)
            .ok_or(ValidationError::OutputValueOutOfRange)?;
    }
    let output_value = tx
        .output_value()
        .ok_or(ValidationError::OutputValueOutOfRange)?;
    if input_value < output_value {
        return Err(ValidationError::InsufficientInputValue {
            inputs: input_value,
            outputs: output_value,
        });
    }
    Ok(input_value.checked_sub(output_value).unwrap())
}

/// Full block validation against the current tip and UTXO set.
///
/// Checks structure, merkle commitment, proof-of-work (if enabled),
/// connection to `prev_hash`, per-transaction rules, in-block double spends
/// and the coinbase value ceiling. Returns total fees.
pub fn check_block(
    block: &Block,
    prev_hash: &Hash256,
    utxos: &UtxoSet,
    height: u64,
    params: &Params,
) -> Result<Amount, ValidationError> {
    if block.transactions.is_empty() {
        return Err(ValidationError::EmptyBlock);
    }
    if !block.transactions[0].is_coinbase() {
        return Err(ValidationError::FirstNotCoinbase);
    }
    if block.transactions[1..].iter().any(|t| t.is_coinbase()) {
        return Err(ValidationError::ExtraCoinbase);
    }
    if block.header.merkle_root != block.computed_merkle_root() {
        return Err(ValidationError::BadMerkleRoot);
    }
    if params.verify_pow && !block.header.meets_target(&params.pow_target) {
        return Err(ValidationError::BadProofOfWork);
    }
    if block.header.prev_hash != *prev_hash {
        return Err(ValidationError::BadPrevHash {
            expected: *prev_hash,
            got: block.header.prev_hash,
        });
    }

    // Per-transaction checks. Later transactions may spend outputs created
    // earlier in the same block, so apply to a scratch UTXO set as we go.
    let mut scratch = utxos.clone();
    let mut spent_in_block: HashSet<OutPoint> = HashSet::new();
    let mut total_fees = Amount::ZERO;
    for tx in &block.transactions {
        check_transaction(tx)?;
        if !tx.is_coinbase() {
            for input in &tx.inputs {
                if !spent_in_block.insert(input.prevout) {
                    return Err(ValidationError::DoubleSpendInBlock(input.prevout));
                }
            }
        }
        let fee = check_tx_inputs(tx, &scratch, height, params)?;
        total_fees = total_fees
            .checked_add(fee)
            .ok_or(ValidationError::OutputValueOutOfRange)?;
        scratch.apply(tx, height);
    }

    // Coinbase value ceiling: subsidy + fees.
    let allowed = params
        .subsidy_at(height)
        .checked_add(total_fees)
        .ok_or(ValidationError::OutputValueOutOfRange)?;
    let claimed = block.transactions[0]
        .output_value()
        .ok_or(ValidationError::OutputValueOutOfRange)?;
    if claimed > allowed {
        return Err(ValidationError::ExcessiveCoinbase { claimed, allowed });
    }
    Ok(total_fees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::block::BlockHeader;
    use crate::transaction::{TxIn, TxOut};
    use fistful_crypto::sha256::sha256d;

    fn cb(height: u64, value: Amount) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn {
                prevout: OutPoint::null(),
                witness: height.to_le_bytes().to_vec(),
            }],
            outputs: vec![TxOut { value, address: Address::from_seed(height) }],
            lock_time: 0,
        }
    }

    fn block_with(txs: Vec<Transaction>, prev: Hash256, time: u64) -> Block {
        let mut b = Block {
            header: BlockHeader {
                version: 1,
                prev_hash: prev,
                merkle_root: Hash256::ZERO,
                time,
                nonce: 0,
            },
            transactions: txs,
        };
        b.header.merkle_root = b.computed_merkle_root();
        b
    }

    fn params() -> Params {
        Params::regtest()
    }

    #[test]
    fn syntactic_rules() {
        let mut tx = cb(0, Amount::from_btc(50));
        assert!(check_transaction(&tx).is_ok());
        tx.outputs.clear();
        assert_eq!(check_transaction(&tx), Err(ValidationError::NoOutputs));
        let no_inputs = Transaction { version: 1, inputs: vec![], outputs: vec![], lock_time: 0 };
        assert_eq!(check_transaction(&no_inputs), Err(ValidationError::NoInputs));
    }

    #[test]
    fn rejects_duplicate_inputs() {
        let op = OutPoint { txid: sha256d(b"x"), vout: 0 };
        let tx = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(op), TxIn::unsigned(op)],
            outputs: vec![TxOut { value: Amount(1), address: Address::from_seed(1) }],
            lock_time: 0,
        };
        assert_eq!(check_transaction(&tx), Err(ValidationError::DuplicateInput(op)));
    }

    #[test]
    fn rejects_oversized_output() {
        let tx = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: sha256d(b"x"), vout: 0 })],
            outputs: vec![TxOut { value: Amount(MAX_MONEY + 1), address: Address::from_seed(1) }],
            lock_time: 0,
        };
        assert_eq!(check_transaction(&tx), Err(ValidationError::OutputValueOutOfRange));
    }

    #[test]
    fn good_block_accepted() {
        let p = params();
        let utxos = UtxoSet::new();
        let b = block_with(vec![cb(0, Amount::from_btc(50))], Hash256::ZERO, p.time_at(0));
        assert_eq!(check_block(&b, &Hash256::ZERO, &utxos, 0, &p), Ok(Amount::ZERO));
    }

    #[test]
    fn rejects_bad_merkle() {
        let p = params();
        let mut b = block_with(vec![cb(0, Amount::from_btc(50))], Hash256::ZERO, p.time_at(0));
        b.header.merkle_root = sha256d(b"wrong");
        assert_eq!(
            check_block(&b, &Hash256::ZERO, &UtxoSet::new(), 0, &p),
            Err(ValidationError::BadMerkleRoot)
        );
    }

    #[test]
    fn rejects_excessive_coinbase() {
        let p = params();
        let b = block_with(vec![cb(0, Amount::from_btc(51))], Hash256::ZERO, p.time_at(0));
        assert!(matches!(
            check_block(&b, &Hash256::ZERO, &UtxoSet::new(), 0, &p),
            Err(ValidationError::ExcessiveCoinbase { .. })
        ));
    }

    #[test]
    fn rejects_wrong_prev_hash() {
        let p = params();
        let b = block_with(vec![cb(0, Amount::from_btc(50))], sha256d(b"fork"), p.time_at(0));
        assert!(matches!(
            check_block(&b, &Hash256::ZERO, &UtxoSet::new(), 0, &p),
            Err(ValidationError::BadPrevHash { .. })
        ));
    }

    #[test]
    fn rejects_first_not_coinbase_and_extra_coinbase() {
        let p = params();
        let mut utxos = UtxoSet::new();
        let funding = cb(0, Amount::from_btc(50));
        utxos.apply(&funding, 0);
        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: funding.txid(), vout: 0 })],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: Address::from_seed(9) }],
            lock_time: 0,
        };
        let b = block_with(vec![spend.clone()], Hash256::ZERO, p.time_at(1));
        assert_eq!(
            check_block(&b, &Hash256::ZERO, &utxos, 1, &p),
            Err(ValidationError::FirstNotCoinbase)
        );
        let b2 = block_with(vec![cb(1, Amount::from_btc(50)), cb(2, Amount::from_btc(50))],
                            Hash256::ZERO, p.time_at(1));
        assert_eq!(
            check_block(&b2, &Hash256::ZERO, &utxos, 1, &p),
            Err(ValidationError::ExtraCoinbase)
        );
    }

    #[test]
    fn spend_within_block_allowed_double_spend_rejected() {
        let p = params();
        let mut utxos = UtxoSet::new();
        let funding = cb(0, Amount::from_btc(50));
        utxos.apply(&funding, 0);
        let op = OutPoint { txid: funding.txid(), vout: 0 };
        let spend1 = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(op)],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: Address::from_seed(2) }],
            lock_time: 0,
        };
        // Chained spend of spend1's output inside the same block: allowed.
        let spend2 = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: spend1.txid(), vout: 0 })],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: Address::from_seed(3) }],
            lock_time: 0,
        };
        let good = block_with(
            vec![cb(1, Amount::from_btc(50)), spend1.clone(), spend2],
            Hash256::ZERO,
            p.time_at(1),
        );
        assert!(check_block(&good, &Hash256::ZERO, &utxos, 1, &p).is_ok());

        // Same outpoint spent by two txs: rejected.
        let conflict = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(op)],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: Address::from_seed(4) }],
            lock_time: 0,
        };
        let bad = block_with(
            vec![cb(1, Amount::from_btc(50)), spend1, conflict],
            Hash256::ZERO,
            p.time_at(1),
        );
        assert_eq!(
            check_block(&bad, &Hash256::ZERO, &utxos, 1, &p),
            Err(ValidationError::DoubleSpendInBlock(op))
        );
    }

    #[test]
    fn fees_flow_to_coinbase_ceiling() {
        let p = params();
        let mut utxos = UtxoSet::new();
        let funding = cb(0, Amount::from_btc(50));
        utxos.apply(&funding, 0);
        // Spend 50, output 49 → fee 1.
        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: funding.txid(), vout: 0 })],
            outputs: vec![TxOut { value: Amount::from_btc(49), address: Address::from_seed(2) }],
            lock_time: 0,
        };
        // Coinbase claims subsidy + fee = 51: allowed.
        let b = block_with(vec![cb(1, Amount::from_btc(51)), spend.clone()], Hash256::ZERO,
                           p.time_at(1));
        assert_eq!(check_block(&b, &Hash256::ZERO, &utxos, 1, &p), Ok(Amount::from_btc(1)));
        // Claiming 52 is rejected.
        let b2 = block_with(vec![cb(1, Amount::from_btc(52)), spend], Hash256::ZERO, p.time_at(1));
        assert!(matches!(
            check_block(&b2, &Hash256::ZERO, &utxos, 1, &p),
            Err(ValidationError::ExcessiveCoinbase { .. })
        ));
    }

    #[test]
    fn coinbase_maturity_enforced() {
        let mut p = params();
        p.coinbase_maturity = 100;
        let mut utxos = UtxoSet::new();
        let funding = cb(0, Amount::from_btc(50));
        utxos.apply(&funding, 0);
        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: funding.txid(), vout: 0 })],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: Address::from_seed(2) }],
            lock_time: 0,
        };
        assert!(matches!(
            check_tx_inputs(&spend, &utxos, 50, &p),
            Err(ValidationError::ImmatureCoinbaseSpend { .. })
        ));
        assert!(check_tx_inputs(&spend, &utxos, 100, &p).is_ok());
    }

    #[test]
    fn signature_validation_when_enabled() {
        use fistful_crypto::keys::KeyPair;
        let mut p = params();
        p.verify_signatures = true;
        let key = KeyPair::from_seed(11);
        let addr = Address::from_public_key(key.public());
        let mut utxos = UtxoSet::new();
        let funding = Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness: vec![1] }],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: addr }],
            lock_time: 0,
        };
        utxos.apply(&funding, 0);
        let mut spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: funding.txid(), vout: 0 })],
            outputs: vec![TxOut { value: Amount::from_btc(49), address: Address::from_seed(3) }],
            lock_time: 0,
        };
        // Unsigned fails.
        assert!(matches!(
            check_tx_inputs(&spend, &utxos, 1, &p),
            Err(ValidationError::BadSignature { input_index: 0 })
        ));
        // Signed passes.
        spend.sign_input(0, &key);
        assert_eq!(check_tx_inputs(&spend, &utxos, 1, &p), Ok(Amount::from_btc(1)));
        // Signed by the wrong key fails.
        let mut wrong = spend.clone();
        wrong.sign_input(0, &KeyPair::from_seed(12));
        assert!(matches!(
            check_tx_inputs(&wrong, &utxos, 1, &p),
            Err(ValidationError::BadSignature { input_index: 0 })
        ));
    }
}

//! Monetary amounts in satoshis, with checked arithmetic.

use std::fmt;
use std::iter::Sum;

/// Satoshis per bitcoin.
pub const COIN: u64 = 100_000_000;

/// The 21-million-bitcoin cap, in satoshis.
pub const MAX_MONEY: u64 = 21_000_000 * COIN;

/// An amount of bitcoin, stored as satoshis.
///
/// Arithmetic is checked: amounts never silently overflow, and validation
/// rejects any value above [`MAX_MONEY`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Amount(pub u64);

impl Amount {
    /// Zero satoshis.
    pub const ZERO: Amount = Amount(0);

    /// Builds from whole bitcoins.
    pub const fn from_btc(btc: u64) -> Amount {
        Amount(btc * COIN)
    }

    /// Builds from satoshis.
    pub const fn from_sat(sat: u64) -> Amount {
        Amount(sat)
    }

    /// The value in satoshis.
    pub const fn to_sat(self) -> u64 {
        self.0
    }

    /// The value in (floating-point) bitcoins, for display only.
    pub fn to_btc(self) -> f64 {
        self.0 as f64 / COIN as f64
    }

    /// True if the amount is within `[0, MAX_MONEY]`.
    pub fn is_valid(self) -> bool {
        self.0 <= MAX_MONEY
    }

    /// Checked addition.
    pub fn checked_add(self, other: Amount) -> Option<Amount> {
        self.0.checked_add(other.0).map(Amount)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: Amount) -> Option<Amount> {
        self.0.checked_sub(other.0).map(Amount)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: Amount) -> Amount {
        Amount(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a scalar, checked.
    pub fn checked_mul(self, k: u64) -> Option<Amount> {
        self.0.checked_mul(k).map(Amount)
    }

}

impl std::ops::Div<u64> for Amount {
    type Output = Amount;

    /// Divides by a scalar (integer division).
    fn div(self, k: u64) -> Amount {
        Amount(self.0 / k)
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, a| {
            acc.checked_add(a).expect("amount sum overflow")
        })
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / COIN;
        let frac = self.0 % COIN;
        if frac == 0 {
            write!(f, "{whole} BTC")
        } else {
            // Trim trailing zeros from the fractional part.
            let mut frac_str = format!("{frac:08}");
            while frac_str.ends_with('0') {
                frac_str.pop();
            }
            write!(f, "{whole}.{frac_str} BTC")
        }
    }
}

impl fmt::Debug for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Amount({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btc_conversion() {
        assert_eq!(Amount::from_btc(50).to_sat(), 5_000_000_000);
        assert_eq!(Amount::from_btc(1).to_btc(), 1.0);
    }

    #[test]
    fn checked_arithmetic() {
        let a = Amount::from_btc(10);
        let b = Amount::from_btc(3);
        assert_eq!(a.checked_add(b), Some(Amount::from_btc(13)));
        assert_eq!(a.checked_sub(b), Some(Amount::from_btc(7)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(Amount(u64::MAX).checked_add(Amount(1)), None);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Amount(5).saturating_sub(Amount(10)), Amount::ZERO);
    }

    #[test]
    fn validity_bounds() {
        assert!(Amount(MAX_MONEY).is_valid());
        assert!(!Amount(MAX_MONEY + 1).is_valid());
        assert!(Amount::ZERO.is_valid());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Amount::from_btc(25).to_string(), "25 BTC");
        assert_eq!(Amount(150_000_000).to_string(), "1.5 BTC");
        assert_eq!(Amount(1).to_string(), "0.00000001 BTC");
    }

    #[test]
    fn sum_iterator() {
        let total: Amount = [Amount(1), Amount(2), Amount(3)].into_iter().sum();
        assert_eq!(total, Amount(6));
    }

    #[test]
    #[should_panic(expected = "amount sum overflow")]
    fn sum_overflow_panics() {
        let _: Amount = [Amount(u64::MAX), Amount(1)].into_iter().sum();
    }
}

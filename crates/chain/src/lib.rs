//! A Bitcoin-style block-chain substrate.
//!
//! This crate implements the ledger the paper's analysis runs over:
//! transactions with multiple inputs and outputs, blocks with proof-of-work
//! headers and merkle roots, a UTXO set, full consensus validation
//! (including the 50 BTC → 25 BTC subsidy halving at block 210,000), and a
//! [`chainstate::ChainState`] that maintains an analysis-friendly
//! [`resolve::ResolvedChain`] view with interned address ids.
//!
//! # Example
//!
//! ```
//! use fistful_chain::address::Address;
//! use fistful_chain::builder::BlockBuilder;
//! use fistful_chain::chainstate::ChainState;
//! use fistful_chain::params::Params;
//!
//! let params = Params::regtest();
//! let mut chain = ChainState::new(params.clone());
//! let miner = Address::from_seed(1);
//! let block = BlockBuilder::new(&params)
//!     .coinbase_to(miner, chain.next_height(), chain.next_subsidy())
//!     .build_on(&chain);
//! chain.accept_block(block).unwrap();
//! assert_eq!(chain.height(), Some(0));
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod amount;
pub mod block;
pub mod builder;
pub mod chainstate;
pub mod columns;
pub mod encode;
pub mod merkle;
pub mod params;
pub mod resolve;
pub mod stats;
pub mod transaction;
pub mod utxo;
pub mod validate;

pub use address::Address;
pub use amount::Amount;
pub use block::{Block, BlockHeader};
pub use chainstate::ChainState;
pub use params::Params;
pub use resolve::{AddressId, ResolvedChain, ResolvedTx, TxId};
pub use transaction::{OutPoint, Transaction, TxIn, TxOut};

//! Merkle trees over transaction ids, with Bitcoin's duplicate-last-node
//! rule for odd levels.

use fistful_crypto::hash::Hash256;
use fistful_crypto::sha256::sha256d;

/// Computes the merkle root of a list of txids.
///
/// An empty list yields the all-zero hash (only a malformed block has no
/// transactions; validation rejects it separately). A single txid is its own
/// root, as in Bitcoin.
pub fn merkle_root(txids: &[Hash256]) -> Hash256 {
    if txids.is_empty() {
        return Hash256::ZERO;
    }
    let mut level: Vec<Hash256> = txids.to_vec();
    while level.len() > 1 {
        if level.len() % 2 == 1 {
            // Bitcoin duplicates the last node at odd levels.
            level.push(*level.last().unwrap());
        }
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            next.push(hash_pair(&pair[0], &pair[1]));
        }
        level = next;
    }
    level[0]
}

/// Hashes two merkle nodes into their parent.
pub fn hash_pair(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut buf = [0u8; 64];
    buf[..32].copy_from_slice(&left.0);
    buf[32..].copy_from_slice(&right.0);
    sha256d(&buf)
}

/// A merkle inclusion proof: the sibling path from a leaf to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// The leaf index the proof is for.
    pub index: usize,
    /// Sibling hashes from leaf level upward.
    pub siblings: Vec<Hash256>,
}

/// Builds an inclusion proof for `txids[index]`.
///
/// Returns `None` if `index` is out of range or the list is empty.
pub fn merkle_proof(txids: &[Hash256], index: usize) -> Option<MerkleProof> {
    if index >= txids.len() {
        return None;
    }
    let mut siblings = Vec::new();
    let mut level: Vec<Hash256> = txids.to_vec();
    let mut idx = index;
    while level.len() > 1 {
        if level.len() % 2 == 1 {
            level.push(*level.last().unwrap());
        }
        let sibling = if idx % 2 == 0 { level[idx + 1] } else { level[idx - 1] };
        siblings.push(sibling);
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            next.push(hash_pair(&pair[0], &pair[1]));
        }
        level = next;
        idx /= 2;
    }
    Some(MerkleProof { index, siblings })
}

/// Verifies an inclusion proof against a root.
pub fn verify_proof(leaf: &Hash256, proof: &MerkleProof, root: &Hash256) -> bool {
    let mut node = *leaf;
    let mut idx = proof.index;
    for sibling in &proof.siblings {
        node = if idx % 2 == 0 {
            hash_pair(&node, sibling)
        } else {
            hash_pair(sibling, &node)
        };
        idx /= 2;
    }
    node == *root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n).map(|i| sha256d(&(i as u64).to_be_bytes())).collect()
    }

    #[test]
    fn empty_list_is_zero() {
        assert_eq!(merkle_root(&[]), Hash256::ZERO);
    }

    #[test]
    fn single_leaf_is_root() {
        let l = leaves(1);
        assert_eq!(merkle_root(&l), l[0]);
    }

    #[test]
    fn two_leaves() {
        let l = leaves(2);
        assert_eq!(merkle_root(&l), hash_pair(&l[0], &l[1]));
    }

    #[test]
    fn odd_level_duplicates_last() {
        let l = leaves(3);
        let left = hash_pair(&l[0], &l[1]);
        let right = hash_pair(&l[2], &l[2]);
        assert_eq!(merkle_root(&l), hash_pair(&left, &right));
    }

    #[test]
    fn root_depends_on_order() {
        let l = leaves(4);
        let mut swapped = l.clone();
        swapped.swap(0, 1);
        assert_ne!(merkle_root(&l), merkle_root(&swapped));
    }

    #[test]
    fn proofs_verify_for_all_sizes_and_indices() {
        for n in 1..=17usize {
            let l = leaves(n);
            let root = merkle_root(&l);
            for i in 0..n {
                let proof = merkle_proof(&l, i).unwrap();
                assert!(verify_proof(&l[i], &proof, &root), "n={n} i={i}");
                // A different leaf must not verify at this position.
                let wrong = sha256d(b"wrong");
                assert!(!verify_proof(&wrong, &proof, &root), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_out_of_range() {
        let l = leaves(4);
        assert!(merkle_proof(&l, 4).is_none());
        assert!(merkle_proof(&[], 0).is_none());
    }

    #[test]
    fn tampered_proof_fails() {
        let l = leaves(8);
        let root = merkle_root(&l);
        let mut proof = merkle_proof(&l, 3).unwrap();
        proof.siblings[1] = sha256d(b"tamper");
        assert!(!verify_proof(&l[3], &proof, &root));
    }
}

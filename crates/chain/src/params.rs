//! Consensus parameters.
//!
//! [`Params::bitcoin_2013`] mirrors mainnet as the paper saw it (50 BTC
//! subsidy halving to 25 BTC at height 210,000); [`Params::regtest`] keeps
//! the same money schedule but a trivial proof-of-work target and no
//! coinbase maturity wait, for fast simulation.

use crate::amount::Amount;
use fistful_crypto::hash::Hash256;

/// Chain-wide consensus parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Params {
    /// Proof-of-work target: block hashes must be numerically ≤ this.
    pub pow_target: Hash256,
    /// Initial block subsidy.
    pub initial_subsidy: Amount,
    /// Blocks between subsidy halvings (210,000 on mainnet).
    pub halving_interval: u64,
    /// Blocks a coinbase output must wait before being spent
    /// (100 on mainnet).
    pub coinbase_maturity: u64,
    /// Whether validation checks ECDSA witnesses. Disabled in the
    /// simulator's fast mode (clustering never inspects signatures).
    pub verify_signatures: bool,
    /// Whether validation checks proof-of-work. Disabled when the economy
    /// simulator fabricates blocks directly.
    pub verify_pow: bool,
    /// Seconds between blocks (for timestamp synthesis).
    pub block_interval_secs: u64,
    /// Unix timestamp of the genesis block.
    pub genesis_time: u64,
}

impl Params {
    /// Mainnet-like parameters as of the paper's 2013 measurement window.
    pub fn bitcoin_2013() -> Params {
        Params {
            // A very easy target so tests can actually mine; real mainnet
            // difficulty is irrelevant to the analysis.
            pow_target: Hash256::from_hex(
                "00ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
            )
            .unwrap(),
            initial_subsidy: Amount::from_btc(50),
            halving_interval: 210_000,
            coinbase_maturity: 100,
            verify_signatures: true,
            verify_pow: true,
            block_interval_secs: 600,
            // 2009-01-03, the real genesis date.
            genesis_time: 1_231_006_505,
        }
    }

    /// Fast parameters for tests and large simulations.
    pub fn regtest() -> Params {
        Params {
            pow_target: Hash256::from_hex(
                "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
            )
            .unwrap(),
            initial_subsidy: Amount::from_btc(50),
            halving_interval: 210_000,
            coinbase_maturity: 0,
            verify_signatures: false,
            verify_pow: false,
            block_interval_secs: 600,
            genesis_time: 1_231_006_505,
        }
    }

    /// The block subsidy at `height`, following the halving schedule.
    pub fn subsidy_at(&self, height: u64) -> Amount {
        let halvings = height / self.halving_interval;
        if halvings >= 64 {
            return Amount::ZERO;
        }
        Amount::from_sat(self.initial_subsidy.to_sat() >> halvings)
    }

    /// Synthesized timestamp for a block at `height`.
    pub fn time_at(&self, height: u64) -> u64 {
        self.genesis_time + height * self.block_interval_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsidy_halving_schedule() {
        let p = Params::bitcoin_2013();
        assert_eq!(p.subsidy_at(0), Amount::from_btc(50));
        assert_eq!(p.subsidy_at(209_999), Amount::from_btc(50));
        // The halving the paper mentions: 28 Nov 2012, height 210,000.
        assert_eq!(p.subsidy_at(210_000), Amount::from_btc(25));
        assert_eq!(p.subsidy_at(420_000), Amount::from_sat(1_250_000_000)); // 12.5 BTC
        assert_eq!(p.subsidy_at(210_000 * 64), Amount::ZERO);
    }

    #[test]
    fn total_supply_below_cap() {
        let p = Params::bitcoin_2013();
        let mut total: u128 = 0;
        for halving in 0..64u64 {
            total += (p.subsidy_at(halving * 210_000).to_sat() as u128) * 210_000;
        }
        assert!(total <= crate::amount::MAX_MONEY as u128);
        // And it should be close to the cap (within one subsidy interval).
        assert!(total > (crate::amount::MAX_MONEY as u128) * 99 / 100);
    }

    #[test]
    fn time_advances_per_block() {
        let p = Params::regtest();
        assert_eq!(p.time_at(0), p.genesis_time);
        assert_eq!(p.time_at(10), p.genesis_time + 6000);
    }
}

//! Pay-to-pubkey-hash addresses.
//!
//! An [`Address`] is the 20-byte `hash160` payload. It can be derived from a
//! real secp256k1 public key (full-crypto mode) or minted directly from a
//! seed (fast mode, used by the large-scale economy simulator where
//! signatures are not exercised — see DESIGN.md).

use fistful_crypto::base58;
use fistful_crypto::hash::Hash160;
use fistful_crypto::keys::{PublicKey, ADDRESS_VERSION};
use fistful_crypto::sha256::hash160;
use std::fmt;

/// A pay-to-pubkey-hash address: the `hash160` of a public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub Hash160);

impl Address {
    /// Derives the address of a public key (`hash160(compressed encoding)`).
    pub fn from_public_key(pk: &PublicKey) -> Address {
        Address(pk.address_hash())
    }

    /// Mints an address deterministically from a seed, without elliptic-curve
    /// work. Used by the simulator's fast mode; such addresses cannot sign.
    pub fn from_seed(seed: u64) -> Address {
        let mut preimage = Vec::with_capacity(21);
        preimage.extend_from_slice(b"fistful-addr\x00");
        preimage.extend_from_slice(&seed.to_be_bytes());
        Address(hash160(&preimage))
    }

    /// Mints an address from a two-part seed (owner id, key index).
    pub fn from_seed2(owner: u64, index: u64) -> Address {
        let mut preimage = Vec::with_capacity(29);
        preimage.extend_from_slice(b"fistful-addr\x01");
        preimage.extend_from_slice(&owner.to_be_bytes());
        preimage.extend_from_slice(&index.to_be_bytes());
        Address(hash160(&preimage))
    }

    /// The raw 20-byte payload.
    pub fn payload(&self) -> &Hash160 {
        &self.0
    }

    /// The human-readable Base58Check form (version `0x00`, like mainnet).
    pub fn to_base58(&self) -> String {
        base58::check_encode(ADDRESS_VERSION, &self.0 .0)
    }

    /// Parses a Base58Check address string.
    pub fn from_base58(s: &str) -> Option<Address> {
        let (version, payload) = base58::check_decode(s).ok()?;
        if version != ADDRESS_VERSION || payload.len() != 20 {
            return None;
        }
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&payload);
        Some(Address(Hash160(bytes)))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_base58())
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({})", self.to_base58())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_crypto::keys::KeyPair;

    #[test]
    fn base58_round_trip() {
        let addr = Address::from_seed(7);
        let s = addr.to_base58();
        assert_eq!(Address::from_base58(&s), Some(addr));
        assert!(s.starts_with('1'));
    }

    #[test]
    fn from_base58_rejects_garbage() {
        assert!(Address::from_base58("not an address").is_none());
        assert!(Address::from_base58("").is_none());
        // Valid checksum but wrong version byte.
        let wrong_version = base58::check_encode(0x6f, &[0u8; 20]);
        assert!(Address::from_base58(&wrong_version).is_none());
    }

    #[test]
    fn seed_addresses_are_distinct() {
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);
        let c = Address::from_seed2(1, 0);
        let d = Address::from_seed2(1, 1);
        assert_ne!(a, b);
        assert_ne!(c, d);
        assert_ne!(a, c);
    }

    #[test]
    fn pubkey_address_matches_keys_module() {
        let kp = KeyPair::from_seed(99);
        let addr = Address::from_public_key(kp.public());
        assert_eq!(addr.to_base58(), kp.public().address_string());
    }
}

//! The analysis-friendly view of the chain.
//!
//! Clustering and flow analysis need resolved transactions — inputs carrying
//! the address and value of the output they spend — plus fast per-address
//! history. [`ResolvedChain`] interns addresses into dense [`AddressId`]s
//! and transactions into dense [`TxId`]s, and maintains spent-by backlinks
//! (which peeling-chain traversal follows) and per-address event lists
//! (which Heuristic 2's "has the address appeared before?" conditions and
//! the false-positive estimator consume).

use crate::address::Address;
use crate::amount::Amount;
use crate::transaction::Transaction;
use crate::utxo::UtxoSet;
use fistful_crypto::hash::Hash256;
use std::collections::HashMap;

/// Dense index of an address within a [`ResolvedChain`].
pub type AddressId = u32;

/// Dense index of a transaction within a [`ResolvedChain`]
/// (chain order: by block, then by position within the block).
pub type TxId = u32;

/// A resolved input: the output being spent, with owner and value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedInput {
    /// The address that owned the spent output.
    pub address: AddressId,
    /// The value of the spent output.
    pub value: Amount,
    /// The transaction that created the spent output.
    pub prev_tx: TxId,
    /// The output index within `prev_tx`.
    pub prev_vout: u32,
}

/// A resolved output, with a backlink to its spender once spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedOutput {
    /// The receiving address.
    pub address: AddressId,
    /// The value.
    pub value: Amount,
    /// The transaction that later spends this output, if any.
    pub spent_by: Option<TxId>,
}

/// A fully resolved transaction.
#[derive(Clone, Debug)]
pub struct ResolvedTx {
    /// The transaction id.
    pub txid: Hash256,
    /// Height of the containing block.
    pub height: u64,
    /// Timestamp of the containing block.
    pub time: u64,
    /// True for coin generations.
    pub is_coinbase: bool,
    /// Resolved inputs (empty for coinbase).
    pub inputs: Vec<ResolvedInput>,
    /// Outputs.
    pub outputs: Vec<ResolvedOutput>,
}

impl ResolvedTx {
    /// Total input value.
    pub fn input_value(&self) -> Amount {
        self.inputs.iter().map(|i| i.value).sum()
    }

    /// Total output value.
    pub fn output_value(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// Fee paid (zero for coinbase).
    pub fn fee(&self) -> Amount {
        if self.is_coinbase {
            Amount::ZERO
        } else {
            self.input_value().saturating_sub(self.output_value())
        }
    }
}

/// Dense index of a block within a [`ResolvedChain`].
pub type BlockId = u32;

/// One block's slice of a [`ResolvedChain`]: the transactions that were
/// confirmed together at one height. This is the unit of replay consumed by
/// the incremental clustering engine (`fistful_core::incremental`).
#[derive(Clone, Copy)]
pub struct ResolvedBlockView<'a> {
    chain: &'a ResolvedChain,
    height: u64,
    start: TxId,
    end: TxId,
}

impl<'a> ResolvedBlockView<'a> {
    /// The chain this block belongs to.
    pub fn chain(&self) -> &'a ResolvedChain {
        self.chain
    }

    /// The block height.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The first transaction id in the block.
    pub fn tx_start(&self) -> TxId {
        self.start
    }

    /// One past the last transaction id in the block.
    pub fn tx_end(&self) -> TxId {
        self.end
    }

    /// Number of transactions in the block.
    pub fn tx_count(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Iterates `(tx id, transaction)` over the block in chain order.
    pub fn txs(&self) -> impl Iterator<Item = (TxId, &'a ResolvedTx)> {
        let chain = self.chain;
        (self.start..self.end).map(move |t| (t, &chain.txs[t as usize]))
    }
}

/// A contiguous run of blocks of a [`ResolvedChain`] — the unit of epoch
/// replay consumed by the sharded ingest pipeline
/// (`fistful_core::incremental::sharded`). Every shard worker walks the
/// same span; [`ResolvedChain::block_span`] is how an epoch's worth of
/// buffered blocks is turned back into a transaction range.
#[derive(Clone, Copy)]
pub struct ResolvedSpanView<'a> {
    chain: &'a ResolvedChain,
    block_start: BlockId,
    block_end: BlockId,
    start: TxId,
    end: TxId,
}

impl<'a> ResolvedSpanView<'a> {
    /// The chain this span belongs to.
    pub fn chain(&self) -> &'a ResolvedChain {
        self.chain
    }

    /// The first block id in the span.
    pub fn block_start(&self) -> BlockId {
        self.block_start
    }

    /// One past the last block id in the span.
    pub fn block_end(&self) -> BlockId {
        self.block_end
    }

    /// Number of blocks in the span.
    pub fn block_count(&self) -> usize {
        (self.block_end - self.block_start) as usize
    }

    /// The first transaction id in the span.
    pub fn tx_start(&self) -> TxId {
        self.start
    }

    /// One past the last transaction id in the span.
    pub fn tx_end(&self) -> TxId {
        self.end
    }

    /// Number of transactions in the span.
    pub fn tx_count(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Iterates `(tx id, transaction)` over the span in chain order.
    pub fn txs(&self) -> impl Iterator<Item = (TxId, &'a ResolvedTx)> {
        let chain = self.chain;
        (self.start..self.end).map(move |t| (t, &chain.txs[t as usize]))
    }

    /// Iterates the span block by block, in height order.
    pub fn blocks(&self) -> impl Iterator<Item = ResolvedBlockView<'a>> {
        let chain = self.chain;
        (self.block_start..self.block_end).map(move |i| chain.block(i))
    }

    /// Height of the span's last block, or `None` for an empty span.
    pub fn last_height(&self) -> Option<u64> {
        (self.block_start < self.block_end)
            .then(|| self.chain.block(self.block_end - 1).height())
    }
}

/// The resolved, interned view of an entire chain.
#[derive(Clone, Default)]
pub struct ResolvedChain {
    /// All transactions in chain order.
    pub txs: Vec<ResolvedTx>,
    // The derived fields are pub(crate) so `crate::columns` can rebuild a
    // chain opened from the on-disk columnar store without re-resolving.
    pub(crate) addresses: Vec<Address>,
    pub(crate) address_index: HashMap<Address, AddressId>,
    pub(crate) txid_index: HashMap<Hash256, TxId>,
    /// Per block: `(height, first tx id)`. The block's transactions run to
    /// the next entry's start (or the end of `txs`). Heights are strictly
    /// increasing — `add_tx` enforces it.
    pub(crate) block_spans: Vec<(u64, TxId)>,
    /// Per address: the first transaction (chain order) in which the address
    /// appeared at all (as input or output).
    pub(crate) first_seen: Vec<TxId>,
    /// Per address: transactions in which the address received an output.
    /// Sorted by tx id, hence (by the monotone-height invariant) by height.
    pub(crate) received_in: Vec<Vec<TxId>>,
    /// Per address: transactions in which the address spent an input.
    pub(crate) spent_in: Vec<Vec<TxId>>,
}

impl ResolvedChain {
    /// An empty chain view.
    pub fn new() -> ResolvedChain {
        ResolvedChain::default()
    }

    /// Number of transactions.
    pub fn tx_count(&self) -> usize {
        self.txs.len()
    }

    /// Number of distinct addresses seen.
    pub fn address_count(&self) -> usize {
        self.addresses.len()
    }

    /// Number of blocks (distinct heights) seen.
    pub fn block_count(&self) -> usize {
        self.block_spans.len()
    }

    /// The `i`-th block's view. Panics on out-of-range indices.
    pub fn block(&self, i: BlockId) -> ResolvedBlockView<'_> {
        let (height, start) = self.block_spans[i as usize];
        let end = self
            .block_spans
            .get(i as usize + 1)
            .map(|&(_, s)| s)
            .unwrap_or(self.txs.len() as TxId);
        ResolvedBlockView { chain: self, height, start, end }
    }

    /// Iterates the chain block by block, in height order.
    pub fn blocks(&self) -> impl Iterator<Item = ResolvedBlockView<'_>> {
        (0..self.block_count() as BlockId).map(move |i| self.block(i))
    }

    /// The span covering blocks `range.start..range.end`. An empty range is
    /// allowed (and yields an empty span); out-of-range indices panic.
    pub fn block_span(&self, range: std::ops::Range<BlockId>) -> ResolvedSpanView<'_> {
        assert!(
            range.start <= range.end && (range.end as usize) <= self.block_count(),
            "block span {}..{} out of range for {} blocks",
            range.start,
            range.end,
            self.block_count()
        );
        let tx_at = |b: BlockId| {
            self.block_spans
                .get(b as usize)
                .map(|&(_, s)| s)
                .unwrap_or(self.txs.len() as TxId)
        };
        ResolvedSpanView {
            chain: self,
            block_start: range.start,
            block_end: range.end,
            start: tx_at(range.start),
            end: tx_at(range.end),
        }
    }

    /// The address for an id. Panics on out-of-range ids.
    pub fn address(&self, id: AddressId) -> Address {
        self.addresses[id as usize]
    }

    /// Looks up the id of an address, if it has appeared.
    pub fn address_id(&self, addr: &Address) -> Option<AddressId> {
        self.address_index.get(addr).copied()
    }

    /// Looks up a transaction by txid.
    pub fn tx_by_txid(&self, txid: &Hash256) -> Option<(TxId, &ResolvedTx)> {
        let id = *self.txid_index.get(txid)?;
        Some((id, &self.txs[id as usize]))
    }

    /// The first transaction in which `addr` appeared.
    pub fn first_seen(&self, addr: AddressId) -> TxId {
        self.first_seen[addr as usize]
    }

    /// Transactions in which `addr` received outputs, in chain order.
    pub fn received_in(&self, addr: AddressId) -> &[TxId] {
        &self.received_in[addr as usize]
    }

    /// Transactions in which `addr` spent inputs, in chain order.
    pub fn spent_in(&self, addr: AddressId) -> &[TxId] {
        &self.spent_in[addr as usize]
    }

    /// The last transaction (chain order) in which `addr` spent an input,
    /// or `None` if the address has never spent. O(1): the per-address
    /// event lists are height-sorted, so the last entry is the maximum.
    pub fn last_spent_in(&self, addr: AddressId) -> Option<TxId> {
        self.spent_in[addr as usize].last().copied()
    }

    /// Total number of transaction outputs across the whole chain — the
    /// length of the flat output arrays a columnar index over this chain
    /// needs (see `fistful_flow::graph::TxGraph`).
    pub fn total_output_count(&self) -> usize {
        self.txs.iter().map(|t| t.outputs.len()).sum()
    }

    /// Total number of transaction inputs across the whole chain
    /// (coinbases contribute zero).
    pub fn total_input_count(&self) -> usize {
        self.txs.iter().map(|t| t.inputs.len()).sum()
    }

    /// True if `addr` never spent any output ("sink" address in the paper's
    /// terminology).
    pub fn is_sink(&self, addr: AddressId) -> bool {
        self.spent_in[addr as usize].is_empty()
    }

    fn intern(&mut self, addr: Address) -> AddressId {
        if let Some(&id) = self.address_index.get(&addr) {
            return id;
        }
        let id = self.addresses.len() as AddressId;
        self.addresses.push(addr);
        self.address_index.insert(addr, id);
        self.first_seen.push(TxId::MAX);
        self.received_in.push(Vec::new());
        self.spent_in.push(Vec::new());
        id
    }

    fn note_seen(&mut self, addr: AddressId, tx: TxId) {
        let slot = &mut self.first_seen[addr as usize];
        if *slot == TxId::MAX {
            *slot = tx;
        }
    }

    /// Appends a validated transaction. `utxos` must reflect the state
    /// *before* this transaction is applied (inputs still present).
    ///
    /// Panics if a non-coinbase input is missing from `utxos` or references
    /// an unknown txid — validation must run first — or if `height` is below
    /// the previous transaction's height. Chain order must be height order;
    /// the per-address event lists ([`received_in`](Self::received_in),
    /// [`spent_in`](Self::spent_in)) are documented as height-sorted and the
    /// wait-window scan in `fistful_core` prunes on that invariant.
    pub fn add_tx(&mut self, tx: &Transaction, utxos: &UtxoSet, height: u64, time: u64) -> TxId {
        let id = self.txs.len() as TxId;
        match self.block_spans.last() {
            Some(&(h, _)) if height < h => {
                panic!("add_tx at height {height} after height {h}: chain order must be height order")
            }
            Some(&(h, _)) if height == h => {}
            _ => self.block_spans.push((height, id)),
        }
        let txid = tx.txid();
        let is_coinbase = tx.is_coinbase();

        let mut inputs = Vec::with_capacity(if is_coinbase { 0 } else { tx.inputs.len() });
        if !is_coinbase {
            for input in &tx.inputs {
                let entry = utxos
                    .get(&input.prevout)
                    .expect("resolving tx with missing input; validate first");
                let prev_tx = *self
                    .txid_index
                    .get(&input.prevout.txid)
                    .expect("input references unknown txid");
                let address = self.intern(entry.address);
                inputs.push(ResolvedInput {
                    address,
                    value: entry.value,
                    prev_tx,
                    prev_vout: input.prevout.vout,
                });
                // Mark the spent output's backlink.
                let prev = &mut self.txs[prev_tx as usize];
                prev.outputs[input.prevout.vout as usize].spent_by = Some(id);
                self.spent_in[address as usize].push(id);
                self.note_seen(address, id);
            }
        }

        let mut outputs = Vec::with_capacity(tx.outputs.len());
        for out in &tx.outputs {
            let address = self.intern(out.address);
            outputs.push(ResolvedOutput { address, value: out.value, spent_by: None });
            self.received_in[address as usize].push(id);
            self.note_seen(address, id);
        }

        self.txid_index.insert(txid, id);
        self.txs.push(ResolvedTx { txid, height, time, is_coinbase, inputs, outputs });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{OutPoint, TxIn, TxOut};

    fn cb(tag: u64, value: Amount, addr: Address) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness: tag.to_le_bytes().to_vec() }],
            outputs: vec![TxOut { value, address: addr }],
            lock_time: 0,
        }
    }

    #[test]
    fn resolves_inputs_and_backlinks() {
        let mut utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);

        let funding = cb(0, Amount::from_btc(50), a);
        rc.add_tx(&funding, &utxos, 0, 100);
        utxos.apply(&funding, 0);

        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: funding.txid(), vout: 0 })],
            outputs: vec![
                TxOut { value: Amount::from_btc(30), address: b },
                TxOut { value: Amount::from_btc(19), address: a },
            ],
            lock_time: 0,
        };
        rc.add_tx(&spend, &utxos, 1, 200);
        utxos.apply(&spend, 1);

        assert_eq!(rc.tx_count(), 2);
        assert_eq!(rc.address_count(), 2);
        let a_id = rc.address_id(&a).unwrap();
        let b_id = rc.address_id(&b).unwrap();

        // Input resolution.
        let spend_rtx = &rc.txs[1];
        assert_eq!(spend_rtx.inputs[0].address, a_id);
        assert_eq!(spend_rtx.inputs[0].value, Amount::from_btc(50));
        assert_eq!(spend_rtx.inputs[0].prev_tx, 0);
        assert_eq!(spend_rtx.fee(), Amount::from_btc(1));

        // Backlink on the funding output.
        assert_eq!(rc.txs[0].outputs[0].spent_by, Some(1));
        // b's output unspent.
        assert_eq!(rc.txs[1].outputs[0].spent_by, None);

        // Event lists.
        assert_eq!(rc.first_seen(a_id), 0);
        assert_eq!(rc.first_seen(b_id), 1);
        assert_eq!(rc.received_in(a_id), &[0, 1]);
        assert_eq!(rc.spent_in(a_id), &[1]);
        assert!(rc.is_sink(b_id));
        assert!(!rc.is_sink(a_id));
    }

    #[test]
    fn txid_lookup() {
        let mut utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let funding = cb(7, Amount::from_btc(50), Address::from_seed(1));
        let id = rc.add_tx(&funding, &utxos, 0, 0);
        utxos.apply(&funding, 0);
        let (found, rtx) = rc.tx_by_txid(&funding.txid()).unwrap();
        assert_eq!(found, id);
        assert!(rtx.is_coinbase);
        assert!(rc.tx_by_txid(&Hash256::ZERO).is_none());
    }

    #[test]
    fn block_views_partition_the_chain() {
        let mut utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let a = Address::from_seed(1);

        // Block 0: one coinbase. Block 1: coinbase + spend (two txs).
        let cb0 = cb(0, Amount::from_btc(50), a);
        rc.add_tx(&cb0, &utxos, 0, 0);
        utxos.apply(&cb0, 0);
        let cb1 = cb(1, Amount::from_btc(50), a);
        rc.add_tx(&cb1, &utxos, 1, 600);
        utxos.apply(&cb1, 1);
        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: cb0.txid(), vout: 0 })],
            outputs: vec![TxOut { value: Amount::from_btc(49), address: Address::from_seed(2) }],
            lock_time: 0,
        };
        rc.add_tx(&spend, &utxos, 1, 600);
        utxos.apply(&spend, 1);

        assert_eq!(rc.block_count(), 2);
        let b0 = rc.block(0);
        assert_eq!((b0.height(), b0.tx_start(), b0.tx_end()), (0, 0, 1));
        let b1 = rc.block(1);
        assert_eq!((b1.height(), b1.tx_start(), b1.tx_end()), (1, 1, 3));
        assert_eq!(b1.tx_count(), 2);
        // blocks() replays every tx exactly once, in chain order.
        let replayed: Vec<TxId> =
            rc.blocks().flat_map(|b| b.txs().map(|(t, _)| t).collect::<Vec<_>>()).collect();
        assert_eq!(replayed, vec![0, 1, 2]);
        assert!(rc.block(1).txs().all(|(t, tx)| rc.txs[t as usize].height == tx.height));
    }

    #[test]
    fn block_spans_cover_contiguous_ranges() {
        let mut utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        // Four single-coinbase blocks at heights 0..4.
        for i in 0..4u64 {
            let c = cb(i, Amount::from_btc(50), Address::from_seed(i + 1));
            rc.add_tx(&c, &utxos, i, i * 600);
            utxos.apply(&c, i);
        }

        let all = rc.block_span(0..4);
        assert_eq!((all.tx_start(), all.tx_end()), (0, 4));
        assert_eq!(all.block_count(), 4);
        assert_eq!(all.last_height(), Some(3));
        assert_eq!(all.txs().map(|(t, _)| t).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Per-block views of the span agree with the chain's own.
        assert_eq!(all.blocks().map(|b| b.height()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);

        let mid = rc.block_span(1..3);
        assert_eq!((mid.tx_start(), mid.tx_end()), (1, 3));
        assert_eq!(mid.last_height(), Some(2));

        // Spans of consecutive epochs partition the chain's transactions.
        let mut seen = Vec::new();
        for epoch in [0..2, 2..4] {
            seen.extend(rc.block_span(epoch).txs().map(|(t, _)| t));
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);

        let empty = rc.block_span(2..2);
        assert_eq!(empty.tx_count(), 0);
        assert_eq!(empty.last_height(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_span_rejects_out_of_range() {
        let rc = ResolvedChain::new();
        let _ = rc.block_span(0..1);
    }

    #[test]
    #[should_panic(expected = "chain order must be height order")]
    fn add_tx_rejects_decreasing_heights() {
        let utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let funding = cb(7, Amount::from_btc(50), Address::from_seed(1));
        rc.add_tx(&funding, &utxos, 5, 0);
        let funding2 = cb(8, Amount::from_btc(50), Address::from_seed(2));
        rc.add_tx(&funding2, &utxos, 4, 0);
    }

    #[test]
    fn coinbase_has_no_inputs() {
        let utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let funding = cb(7, Amount::from_btc(50), Address::from_seed(1));
        rc.add_tx(&funding, &utxos, 0, 0);
        assert!(rc.txs[0].inputs.is_empty());
        assert_eq!(rc.txs[0].fee(), Amount::ZERO);
    }
}

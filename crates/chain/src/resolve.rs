//! The analysis-friendly view of the chain.
//!
//! Clustering and flow analysis need resolved transactions — inputs carrying
//! the address and value of the output they spend — plus fast per-address
//! history. [`ResolvedChain`] interns addresses into dense [`AddressId`]s
//! and transactions into dense [`TxId`]s, and maintains spent-by backlinks
//! (which peeling-chain traversal follows) and per-address event lists
//! (which Heuristic 2's "has the address appeared before?" conditions and
//! the false-positive estimator consume).

use crate::address::Address;
use crate::amount::Amount;
use crate::transaction::Transaction;
use crate::utxo::UtxoSet;
use fistful_crypto::hash::Hash256;
use std::collections::HashMap;

/// Dense index of an address within a [`ResolvedChain`].
pub type AddressId = u32;

/// Dense index of a transaction within a [`ResolvedChain`]
/// (chain order: by block, then by position within the block).
pub type TxId = u32;

/// A resolved input: the output being spent, with owner and value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedInput {
    /// The address that owned the spent output.
    pub address: AddressId,
    /// The value of the spent output.
    pub value: Amount,
    /// The transaction that created the spent output.
    pub prev_tx: TxId,
    /// The output index within `prev_tx`.
    pub prev_vout: u32,
}

/// A resolved output, with a backlink to its spender once spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedOutput {
    /// The receiving address.
    pub address: AddressId,
    /// The value.
    pub value: Amount,
    /// The transaction that later spends this output, if any.
    pub spent_by: Option<TxId>,
}

/// A fully resolved transaction.
#[derive(Clone, Debug)]
pub struct ResolvedTx {
    /// The transaction id.
    pub txid: Hash256,
    /// Height of the containing block.
    pub height: u64,
    /// Timestamp of the containing block.
    pub time: u64,
    /// True for coin generations.
    pub is_coinbase: bool,
    /// Resolved inputs (empty for coinbase).
    pub inputs: Vec<ResolvedInput>,
    /// Outputs.
    pub outputs: Vec<ResolvedOutput>,
}

impl ResolvedTx {
    /// Total input value.
    pub fn input_value(&self) -> Amount {
        self.inputs.iter().map(|i| i.value).sum()
    }

    /// Total output value.
    pub fn output_value(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// Fee paid (zero for coinbase).
    pub fn fee(&self) -> Amount {
        if self.is_coinbase {
            Amount::ZERO
        } else {
            self.input_value().saturating_sub(self.output_value())
        }
    }
}

/// The resolved, interned view of an entire chain.
#[derive(Clone, Default)]
pub struct ResolvedChain {
    /// All transactions in chain order.
    pub txs: Vec<ResolvedTx>,
    addresses: Vec<Address>,
    address_index: HashMap<Address, AddressId>,
    txid_index: HashMap<Hash256, TxId>,
    /// Per address: the first transaction (chain order) in which the address
    /// appeared at all (as input or output).
    first_seen: Vec<TxId>,
    /// Per address: transactions in which the address received an output.
    received_in: Vec<Vec<TxId>>,
    /// Per address: transactions in which the address spent an input.
    spent_in: Vec<Vec<TxId>>,
}

impl ResolvedChain {
    /// An empty chain view.
    pub fn new() -> ResolvedChain {
        ResolvedChain::default()
    }

    /// Number of transactions.
    pub fn tx_count(&self) -> usize {
        self.txs.len()
    }

    /// Number of distinct addresses seen.
    pub fn address_count(&self) -> usize {
        self.addresses.len()
    }

    /// The address for an id. Panics on out-of-range ids.
    pub fn address(&self, id: AddressId) -> Address {
        self.addresses[id as usize]
    }

    /// Looks up the id of an address, if it has appeared.
    pub fn address_id(&self, addr: &Address) -> Option<AddressId> {
        self.address_index.get(addr).copied()
    }

    /// Looks up a transaction by txid.
    pub fn tx_by_txid(&self, txid: &Hash256) -> Option<(TxId, &ResolvedTx)> {
        let id = *self.txid_index.get(txid)?;
        Some((id, &self.txs[id as usize]))
    }

    /// The first transaction in which `addr` appeared.
    pub fn first_seen(&self, addr: AddressId) -> TxId {
        self.first_seen[addr as usize]
    }

    /// Transactions in which `addr` received outputs, in chain order.
    pub fn received_in(&self, addr: AddressId) -> &[TxId] {
        &self.received_in[addr as usize]
    }

    /// Transactions in which `addr` spent inputs, in chain order.
    pub fn spent_in(&self, addr: AddressId) -> &[TxId] {
        &self.spent_in[addr as usize]
    }

    /// True if `addr` never spent any output ("sink" address in the paper's
    /// terminology).
    pub fn is_sink(&self, addr: AddressId) -> bool {
        self.spent_in[addr as usize].is_empty()
    }

    fn intern(&mut self, addr: Address) -> AddressId {
        if let Some(&id) = self.address_index.get(&addr) {
            return id;
        }
        let id = self.addresses.len() as AddressId;
        self.addresses.push(addr);
        self.address_index.insert(addr, id);
        self.first_seen.push(TxId::MAX);
        self.received_in.push(Vec::new());
        self.spent_in.push(Vec::new());
        id
    }

    fn note_seen(&mut self, addr: AddressId, tx: TxId) {
        let slot = &mut self.first_seen[addr as usize];
        if *slot == TxId::MAX {
            *slot = tx;
        }
    }

    /// Appends a validated transaction. `utxos` must reflect the state
    /// *before* this transaction is applied (inputs still present).
    ///
    /// Panics if a non-coinbase input is missing from `utxos` or references
    /// an unknown txid — validation must run first.
    pub fn add_tx(&mut self, tx: &Transaction, utxos: &UtxoSet, height: u64, time: u64) -> TxId {
        let id = self.txs.len() as TxId;
        let txid = tx.txid();
        let is_coinbase = tx.is_coinbase();

        let mut inputs = Vec::with_capacity(if is_coinbase { 0 } else { tx.inputs.len() });
        if !is_coinbase {
            for input in &tx.inputs {
                let entry = utxos
                    .get(&input.prevout)
                    .expect("resolving tx with missing input; validate first");
                let prev_tx = *self
                    .txid_index
                    .get(&input.prevout.txid)
                    .expect("input references unknown txid");
                let address = self.intern(entry.address);
                inputs.push(ResolvedInput {
                    address,
                    value: entry.value,
                    prev_tx,
                    prev_vout: input.prevout.vout,
                });
                // Mark the spent output's backlink.
                let prev = &mut self.txs[prev_tx as usize];
                prev.outputs[input.prevout.vout as usize].spent_by = Some(id);
                self.spent_in[address as usize].push(id);
                self.note_seen(address, id);
            }
        }

        let mut outputs = Vec::with_capacity(tx.outputs.len());
        for out in &tx.outputs {
            let address = self.intern(out.address);
            outputs.push(ResolvedOutput { address, value: out.value, spent_by: None });
            self.received_in[address as usize].push(id);
            self.note_seen(address, id);
        }

        self.txid_index.insert(txid, id);
        self.txs.push(ResolvedTx { txid, height, time, is_coinbase, inputs, outputs });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{OutPoint, TxIn, TxOut};

    fn cb(tag: u64, value: Amount, addr: Address) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness: tag.to_le_bytes().to_vec() }],
            outputs: vec![TxOut { value, address: addr }],
            lock_time: 0,
        }
    }

    #[test]
    fn resolves_inputs_and_backlinks() {
        let mut utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);

        let funding = cb(0, Amount::from_btc(50), a);
        rc.add_tx(&funding, &utxos, 0, 100);
        utxos.apply(&funding, 0);

        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint { txid: funding.txid(), vout: 0 })],
            outputs: vec![
                TxOut { value: Amount::from_btc(30), address: b },
                TxOut { value: Amount::from_btc(19), address: a },
            ],
            lock_time: 0,
        };
        rc.add_tx(&spend, &utxos, 1, 200);
        utxos.apply(&spend, 1);

        assert_eq!(rc.tx_count(), 2);
        assert_eq!(rc.address_count(), 2);
        let a_id = rc.address_id(&a).unwrap();
        let b_id = rc.address_id(&b).unwrap();

        // Input resolution.
        let spend_rtx = &rc.txs[1];
        assert_eq!(spend_rtx.inputs[0].address, a_id);
        assert_eq!(spend_rtx.inputs[0].value, Amount::from_btc(50));
        assert_eq!(spend_rtx.inputs[0].prev_tx, 0);
        assert_eq!(spend_rtx.fee(), Amount::from_btc(1));

        // Backlink on the funding output.
        assert_eq!(rc.txs[0].outputs[0].spent_by, Some(1));
        // b's output unspent.
        assert_eq!(rc.txs[1].outputs[0].spent_by, None);

        // Event lists.
        assert_eq!(rc.first_seen(a_id), 0);
        assert_eq!(rc.first_seen(b_id), 1);
        assert_eq!(rc.received_in(a_id), &[0, 1]);
        assert_eq!(rc.spent_in(a_id), &[1]);
        assert!(rc.is_sink(b_id));
        assert!(!rc.is_sink(a_id));
    }

    #[test]
    fn txid_lookup() {
        let mut utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let funding = cb(7, Amount::from_btc(50), Address::from_seed(1));
        let id = rc.add_tx(&funding, &utxos, 0, 0);
        utxos.apply(&funding, 0);
        let (found, rtx) = rc.tx_by_txid(&funding.txid()).unwrap();
        assert_eq!(found, id);
        assert!(rtx.is_coinbase);
        assert!(rc.tx_by_txid(&Hash256::ZERO).is_none());
    }

    #[test]
    fn coinbase_has_no_inputs() {
        let utxos = UtxoSet::new();
        let mut rc = ResolvedChain::new();
        let funding = cb(7, Amount::from_btc(50), Address::from_seed(1));
        rc.add_tx(&funding, &utxos, 0, 0);
        assert!(rc.txs[0].inputs.is_empty());
        assert_eq!(rc.txs[0].fee(), Amount::ZERO);
    }
}

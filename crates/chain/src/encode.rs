//! Consensus-style binary encoding.
//!
//! Mirrors Bitcoin's wire format conventions: little-endian fixed-width
//! integers, `CompactSize` variable-length counts, and length-prefixed
//! vectors. Every chain type implements [`Encodable`] and [`Decodable`];
//! txids and block hashes are double-SHA-256 over this encoding.

use fistful_crypto::hash::Hash256;

/// Errors from decoding a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A `CompactSize` used a longer-than-necessary form.
    NonCanonicalCompactSize,
    /// A count exceeded the sanity limit.
    OversizedCount(u64),
    /// An enum discriminant or flag byte had an unknown value.
    InvalidValue(u8),
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::NonCanonicalCompactSize => write!(f, "non-canonical compactsize"),
            DecodeError::OversizedCount(n) => write!(f, "oversized count {n}"),
            DecodeError::InvalidValue(v) => write!(f, "invalid value byte {v:#x}"),
            DecodeError::InvalidUtf8 => write!(f, "string is not valid utf-8"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after decode"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum element count accepted for any decoded vector; prevents
/// pathological allocations from corrupt input.
pub const MAX_VEC_LEN: u64 = 1 << 22;

/// Maximum byte length accepted for a decoded string. Strings on the wire
/// are human-scale labels (service names, categories), so anything longer
/// is corrupt input.
pub const MAX_STR_LEN: u64 = 1 << 16;

/// A byte reader with position tracking.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a Bitcoin `CompactSize`, enforcing canonical encoding.
    pub fn compact_size(&mut self) -> Result<u64, DecodeError> {
        let tag = self.u8()?;
        let value = match tag {
            0..=0xfc => tag as u64,
            0xfd => {
                let v = self.u16()? as u64;
                if v < 0xfd {
                    return Err(DecodeError::NonCanonicalCompactSize);
                }
                v
            }
            0xfe => {
                let v = self.u32()? as u64;
                if v <= u16::MAX as u64 {
                    return Err(DecodeError::NonCanonicalCompactSize);
                }
                v
            }
            0xff => {
                let v = self.u64()?;
                if v <= u32::MAX as u64 {
                    return Err(DecodeError::NonCanonicalCompactSize);
                }
                v
            }
        };
        Ok(value)
    }

    /// Reads a 32-byte hash.
    pub fn hash256(&mut self) -> Result<Hash256, DecodeError> {
        let bytes = self.take(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(bytes);
        Ok(Hash256(out))
    }

    /// Reads a `CompactSize`-length-prefixed UTF-8 string (bounded by
    /// [`MAX_STR_LEN`]).
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.compact_size()?;
        if len > MAX_STR_LEN {
            return Err(DecodeError::OversizedCount(len));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }

    /// Reads an optional string: a `0`/`1` presence byte, then (when `1`)
    /// the string itself. Any other presence byte is invalid.
    pub fn opt_string(&mut self) -> Result<Option<String>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.string()?)),
            other => Err(DecodeError::InvalidValue(other)),
        }
    }

    /// Reads `n` little-endian u32s in one bounds-checked take — the bulk
    /// path for columnar arrays (assignment columns, CSR prefix arrays),
    /// where a per-element [`u32`](Self::u32) loop would pay a length
    /// check per entry.
    pub fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, DecodeError> {
        let bytes = self.take(n.checked_mul(4).ok_or(DecodeError::OversizedCount(n as u64))?)?;
        let mut out = Vec::with_capacity(n);
        out.extend(bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())));
        Ok(out)
    }

    /// Reads `n` little-endian u64s in one bounds-checked take.
    pub fn u64_vec(&mut self, n: usize) -> Result<Vec<u64>, DecodeError> {
        let bytes = self.take(n.checked_mul(8).ok_or(DecodeError::OversizedCount(n as u64))?)?;
        let mut out = Vec::with_capacity(n);
        out.extend(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())));
        Ok(out)
    }

    /// Consumes zero padding up to the next multiple of `align` (counted
    /// from the start of the input). A non-zero padding byte is corrupt
    /// input ([`DecodeError::InvalidValue`]); `align` must be a power of
    /// two. The inverse of [`Writer::pad_to`].
    pub fn skip_padding(&mut self, align: usize) -> Result<(), DecodeError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let pad = self.pos.wrapping_neg() & (align - 1);
        for &b in self.take(pad)? {
            if b != 0 {
                return Err(DecodeError::InvalidValue(b));
            }
        }
        Ok(())
    }

    /// Errors if any bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

/// A byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a slice of u32s as little-endian bytes in staged flat
    /// copies (a 4 KiB stack buffer filled per chunk, then appended in one
    /// `extend_from_slice`) — the bulk path that replaces per-element
    /// `u32` loops when writing columnar arrays.
    pub fn u32_slice(&mut self, vs: &[u32]) {
        const CHUNK: usize = 1024;
        let mut stage = [0u8; CHUNK * 4];
        self.buf.reserve(vs.len() * 4);
        for chunk in vs.chunks(CHUNK) {
            for (slot, v) in stage.chunks_exact_mut(4).zip(chunk) {
                slot.copy_from_slice(&v.to_le_bytes());
            }
            self.buf.extend_from_slice(&stage[..chunk.len() * 4]);
        }
    }

    /// Appends a slice of u64s as little-endian bytes in staged flat
    /// copies (see [`u32_slice`](Self::u32_slice)).
    pub fn u64_slice(&mut self, vs: &[u64]) {
        const CHUNK: usize = 512;
        let mut stage = [0u8; CHUNK * 8];
        self.buf.reserve(vs.len() * 8);
        for chunk in vs.chunks(CHUNK) {
            for (slot, v) in stage.chunks_exact_mut(8).zip(chunk) {
                slot.copy_from_slice(&v.to_le_bytes());
            }
            self.buf.extend_from_slice(&stage[..chunk.len() * 8]);
        }
    }

    /// Appends zero bytes until the length written is a multiple of
    /// `align` (a power of two) — how the artifact store keeps column
    /// segments page-aligned. [`Reader::skip_padding`] is the inverse.
    pub fn pad_to(&mut self, align: usize) {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let pad = self.buf.len().wrapping_neg() & (align - 1);
        self.buf.resize(self.buf.len() + pad, 0);
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a canonical Bitcoin `CompactSize`.
    pub fn compact_size(&mut self, v: u64) {
        match v {
            0..=0xfc => self.u8(v as u8),
            0xfd..=0xffff => {
                self.u8(0xfd);
                self.u16(v as u16);
            }
            0x1_0000..=0xffff_ffff => {
                self.u8(0xfe);
                self.u32(v as u32);
            }
            _ => {
                self.u8(0xff);
                self.u64(v);
            }
        }
    }

    /// Appends a 32-byte hash.
    pub fn hash256(&mut self, h: &Hash256) {
        self.buf.extend_from_slice(&h.0);
    }

    /// Appends a `CompactSize`-length-prefixed UTF-8 string.
    ///
    /// Panics if the string exceeds [`MAX_STR_LEN`] — the decoder rejects
    /// longer strings, so writing one would produce bytes that can never
    /// round-trip; failing at write time keeps that guarantee loud.
    pub fn string(&mut self, s: &str) {
        assert!(
            s.len() as u64 <= MAX_STR_LEN,
            "string of {} bytes exceeds the wire limit of {MAX_STR_LEN}",
            s.len()
        );
        self.compact_size(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Appends an optional string: a `0`/`1` presence byte, then (when
    /// present) the string itself.
    pub fn opt_string(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.string(s);
            }
        }
    }
}

/// A type with a canonical consensus encoding.
pub trait Encodable {
    /// Writes the canonical encoding.
    fn encode(&self, w: &mut Writer);

    /// Convenience: the canonical encoding as bytes.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// A type decodable from its consensus encoding.
pub trait Decodable: Sized {
    /// Reads a value; leaves the reader positioned after it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Decodes an entire buffer, rejecting trailing bytes.
    fn decode_all(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(data);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Encodes a slice as `CompactSize` count followed by each element.
pub fn encode_vec<T: Encodable>(w: &mut Writer, items: &[T]) {
    w.compact_size(items.len() as u64);
    for item in items {
        item.encode(w);
    }
}

/// Decodes a `CompactSize`-prefixed vector with a sanity bound.
pub fn decode_vec<T: Decodable>(r: &mut Reader<'_>) -> Result<Vec<T>, DecodeError> {
    let count = r.compact_size()?;
    if count > MAX_VEC_LEN {
        return Err(DecodeError::OversizedCount(count));
    }
    let mut out = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_size_canonical_forms() {
        let cases: [(u64, usize); 6] = [
            (0, 1),
            (0xfc, 1),
            (0xfd, 3),
            (0xffff, 3),
            (0x10000, 5),
            (0x1_0000_0000, 9),
        ];
        for (v, len) in cases {
            let mut w = Writer::new();
            w.compact_size(v);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), len, "value {v}");
            let mut r = Reader::new(&bytes);
            assert_eq!(r.compact_size().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn compact_size_rejects_non_canonical() {
        // 0xfc encoded with the 0xfd prefix.
        let bytes = [0xfdu8, 0xfc, 0x00];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.compact_size(), Err(DecodeError::NonCanonicalCompactSize));
    }

    #[test]
    fn reader_bounds() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.u8(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[1]);
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn little_endian_round_trip() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdeadbeef);
        w.u64(0x0123456789abcdef);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.u64().unwrap(), 0x0123456789abcdef);
        r.finish().unwrap();
    }

    #[test]
    fn oversized_vector_rejected() {
        let mut w = Writer::new();
        w.compact_size(MAX_VEC_LEN + 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_vec::<TestByte>(&mut r),
            Err(DecodeError::OversizedCount(_))
        ));
    }

    struct TestByte(u8);
    impl Encodable for TestByte {
        fn encode(&self, w: &mut Writer) {
            w.u8(self.0);
        }
    }
    impl Decodable for TestByte {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(TestByte(r.u8()?))
        }
    }

    #[test]
    fn string_round_trip() {
        let mut w = Writer::new();
        w.string("Mt. Gox");
        w.opt_string(None);
        w.opt_string(Some("gambling"));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.string().unwrap(), "Mt. Gox");
        assert_eq!(r.opt_string().unwrap(), None);
        assert_eq!(r.opt_string().unwrap(), Some("gambling".to_string()));
        r.finish().unwrap();
    }

    #[test]
    fn string_rejects_bad_utf8_and_bad_presence() {
        // Length 1, byte 0xff: invalid UTF-8.
        let mut r = Reader::new(&[1, 0xff]);
        assert_eq!(r.string(), Err(DecodeError::InvalidUtf8));
        // Presence byte 2 is neither 0 nor 1.
        let mut r = Reader::new(&[2]);
        assert_eq!(r.opt_string(), Err(DecodeError::InvalidValue(2)));
    }

    #[test]
    fn oversized_string_rejected() {
        let mut w = Writer::new();
        w.compact_size(MAX_STR_LEN + 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.string(), Err(DecodeError::OversizedCount(_))));
    }

    #[test]
    #[should_panic(expected = "exceeds the wire limit")]
    fn oversized_string_cannot_be_written() {
        let mut w = Writer::new();
        w.string(&"x".repeat(MAX_STR_LEN as usize + 1));
    }

    #[test]
    fn bulk_slices_match_per_element_encoding() {
        // The staged flat copies must produce byte-for-byte what the
        // per-element writers produce, across chunk boundaries.
        let u32s: Vec<u32> = (0..3000u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let u64s: Vec<u64> = (0..1500u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let mut bulk = Writer::new();
        bulk.u32_slice(&u32s);
        bulk.u64_slice(&u64s);
        let mut loops = Writer::new();
        for &v in &u32s {
            loops.u32(v);
        }
        for &v in &u64s {
            loops.u64(v);
        }
        assert_eq!(bulk.len(), loops.len());
        let bulk = bulk.into_bytes();
        assert_eq!(bulk, loops.into_bytes());

        // And the bulk readers decode them back.
        let mut r = Reader::new(&bulk);
        assert_eq!(r.u32_vec(u32s.len()).unwrap(), u32s);
        assert_eq!(r.u64_vec(u64s.len()).unwrap(), u64s);
        r.finish().unwrap();

        // Reading past the end is UnexpectedEnd, not a panic.
        let mut r = Reader::new(&bulk[..7]);
        assert_eq!(r.u32_vec(2), Err(DecodeError::UnexpectedEnd));
        // And an absurd count fails before any allocation.
        let mut r = Reader::new(&bulk);
        assert!(matches!(r.u32_vec(usize::MAX), Err(DecodeError::OversizedCount(_))));
    }

    #[test]
    fn padding_round_trips_and_rejects_nonzero() {
        for align in [1usize, 2, 64, 4096] {
            let mut w = Writer::new();
            assert!(w.is_empty());
            w.bytes(&[7; 5]);
            w.pad_to(align);
            assert_eq!(w.len() % align, 0);
            w.u32(0xdeadbeef);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.take(5).unwrap(), &[7; 5]);
            r.skip_padding(align).unwrap();
            assert_eq!(r.u32().unwrap(), 0xdeadbeef);
            r.finish().unwrap();
        }
        // Already aligned: pad_to is a no-op.
        let mut w = Writer::new();
        w.bytes(&[1; 8]);
        w.pad_to(8);
        assert_eq!(w.len(), 8);
        // Non-zero padding bytes are corrupt input.
        let mut r = Reader::new(&[1, 9, 9, 9]);
        r.u8().unwrap();
        assert_eq!(r.skip_padding(4), Err(DecodeError::InvalidValue(9)));
    }

    #[test]
    fn vec_round_trip() {
        let items = vec![TestByte(1), TestByte(2), TestByte(3)];
        let mut w = Writer::new();
        encode_vec(&mut w, &items);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = decode_vec::<TestByte>(&mut r).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[2].0, 3);
    }
}

//! Transactions: multi-input, multi-output transfers of value.
//!
//! Inputs spend previous outputs in full — the only way to make change is an
//! explicit change output, which is exactly the idiom Heuristic 2 of the
//! paper exploits. Ownership is authorized by an ECDSA signature over the
//! transaction's [`sighash`](Transaction::sighash) when full-crypto mode is
//! in use; the simulator's fast mode leaves witnesses empty (validation of
//! signatures is then disabled — see DESIGN.md).

use crate::address::Address;
use crate::amount::Amount;
use crate::encode::{decode_vec, encode_vec, Decodable, DecodeError, Encodable, Reader, Writer};
use fistful_crypto::hash::Hash256;
use fistful_crypto::keys::KeyPair;
use fistful_crypto::secp256k1::Signature;
use fistful_crypto::sha256::sha256d;
use std::fmt;

/// A reference to a transaction output: `(txid, output index)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OutPoint {
    /// The transaction that created the output.
    pub txid: Hash256,
    /// The index of the output within that transaction.
    pub vout: u32,
}

impl OutPoint {
    /// The null outpoint used by coin-generation (coinbase) inputs.
    pub fn null() -> OutPoint {
        OutPoint { txid: Hash256::ZERO, vout: u32::MAX }
    }

    /// True for the coinbase marker.
    pub fn is_null(&self) -> bool {
        self.txid == Hash256::ZERO && self.vout == u32::MAX
    }
}

impl Encodable for OutPoint {
    fn encode(&self, w: &mut Writer) {
        w.hash256(&self.txid);
        w.u32(self.vout);
    }
}

impl Decodable for OutPoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(OutPoint { txid: r.hash256()?, vout: r.u32()? })
    }
}

/// A transaction input.
///
/// `witness` carries `pubkey(33) || signature(64)` in full-crypto mode, or
/// arbitrary bytes for a coinbase (height + extra nonce), or nothing in the
/// simulator's fast mode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxIn {
    /// The output being spent (null for coinbase).
    pub prevout: OutPoint,
    /// Authorization data; see type-level docs.
    pub witness: Vec<u8>,
}

impl TxIn {
    /// An input spending `prevout` with no witness (fast mode).
    pub fn unsigned(prevout: OutPoint) -> TxIn {
        TxIn { prevout, witness: Vec::new() }
    }

    /// Splits a full-crypto witness into `(pubkey, signature)` if present.
    pub fn witness_parts(&self) -> Option<([u8; 33], [u8; 64])> {
        if self.witness.len() != 97 {
            return None;
        }
        let mut pk = [0u8; 33];
        let mut sig = [0u8; 64];
        pk.copy_from_slice(&self.witness[..33]);
        sig.copy_from_slice(&self.witness[33..]);
        Some((pk, sig))
    }
}

impl Encodable for TxIn {
    fn encode(&self, w: &mut Writer) {
        self.prevout.encode(w);
        w.compact_size(self.witness.len() as u64);
        w.bytes(&self.witness);
    }
}

impl Decodable for TxIn {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let prevout = OutPoint::decode(r)?;
        let len = r.compact_size()?;
        if len > 1024 {
            return Err(DecodeError::OversizedCount(len));
        }
        let witness = r.take(len as usize)?.to_vec();
        Ok(TxIn { prevout, witness })
    }
}

/// A transaction output: a value bound to an address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxOut {
    /// The amount carried by this output.
    pub value: Amount,
    /// The address that may spend it.
    pub address: Address,
}

impl Encodable for TxOut {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.value.to_sat());
        w.bytes(&self.address.0 .0);
    }
}

impl Decodable for TxOut {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let value = Amount::from_sat(r.u64()?);
        let bytes = r.take(20)?;
        let mut payload = [0u8; 20];
        payload.copy_from_slice(bytes);
        Ok(TxOut {
            value,
            address: Address(fistful_crypto::hash::Hash160(payload)),
        })
    }
}

/// A transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Format version (always 1 in this workspace).
    pub version: u32,
    /// Inputs spending previous outputs.
    pub inputs: Vec<TxIn>,
    /// Newly created outputs.
    pub outputs: Vec<TxOut>,
    /// Earliest block height at which the transaction may be mined
    /// (0 = immediately).
    pub lock_time: u32,
}

impl Transaction {
    /// The transaction id: double-SHA-256 of the canonical encoding.
    pub fn txid(&self) -> Hash256 {
        sha256d(&self.encode_to_vec())
    }

    /// True if this is a coin generation (single null-prevout input).
    pub fn is_coinbase(&self) -> bool {
        self.inputs.len() == 1 && self.inputs[0].prevout.is_null()
    }

    /// Total output value; `None` on overflow.
    pub fn output_value(&self) -> Option<Amount> {
        self.outputs
            .iter()
            .try_fold(Amount::ZERO, |acc, o| acc.checked_add(o.value))
    }

    /// The digest that input signatures commit to: the encoding with every
    /// witness blanked (a simplified `SIGHASH_ALL`).
    pub fn sighash(&self) -> Hash256 {
        let mut stripped = self.clone();
        for input in &mut stripped.inputs {
            input.witness.clear();
        }
        let mut preimage = stripped.encode_to_vec();
        preimage.extend_from_slice(b"fistful-sighash-all");
        sha256d(&preimage)
    }

    /// Signs input `index` with `key`, installing the full-crypto witness.
    /// Panics if `index` is out of range.
    pub fn sign_input(&mut self, index: usize, key: &KeyPair) {
        let digest = self.sighash();
        let sig = key.sign(&digest);
        let mut witness = Vec::with_capacity(97);
        witness.extend_from_slice(&key.public().to_bytes());
        witness.extend_from_slice(&sig.to_bytes());
        self.inputs[index].witness = witness;
    }

    /// Verifies the signature on input `index` against `expected`, the
    /// address of the output being spent.
    pub fn verify_input(&self, index: usize, expected: &Address) -> bool {
        let Some(input) = self.inputs.get(index) else {
            return false;
        };
        let Some((pk_bytes, sig_bytes)) = input.witness_parts() else {
            return false;
        };
        // The pubkey must hash to the spent output's address.
        let pk_hash = fistful_crypto::sha256::hash160(&pk_bytes);
        if pk_hash != expected.0 {
            return false;
        }
        // Decompress: recover the affine point from the compressed bytes by
        // re-deriving y is not implemented; instead witnesses carry the
        // compressed key and verification reconstructs it via trial parse.
        let Some(pubkey) = parse_compressed_pubkey(&pk_bytes) else {
            return false;
        };
        let sig = Signature::from_bytes(&sig_bytes);
        let digest = self.sighash();
        fistful_crypto::secp256k1::verify(&pubkey, digest.as_bytes(), &sig)
    }
}

/// Parses a compressed SEC1 public key (point decompression via
/// `y = sqrt(x³+7)`, selecting the root with matching parity).
pub fn parse_compressed_pubkey(bytes: &[u8; 33]) -> Option<fistful_crypto::secp256k1::Affine> {
    use fistful_crypto::field::{Fe, P};
    use fistful_crypto::u256::U256;

    let want_odd = match bytes[0] {
        0x02 => false,
        0x03 => true,
        _ => return None,
    };
    let mut xb = [0u8; 32];
    xb.copy_from_slice(&bytes[1..]);
    let x = Fe::from_be_bytes(&xb);
    let rhs = x.square().mul(&x).add(&Fe::from_u64(7));
    // p ≡ 3 (mod 4), so sqrt(a) = a^((p+1)/4) when a is a QR. p+1 would
    // overflow 256 bits, so compute the exponent as (p-3)/4 + 1.
    let (pm3, _) = P.overflowing_sub(&U256::from_u64(3));
    let exp = shr2(&pm3); // (p-3)/4
    let (exp_plus_1, _) = exp.overflowing_add(&U256::ONE); // (p+1)/4
    let y = rhs.pow(&exp_plus_1);
    if y.square() != rhs {
        return None; // x is not on the curve
    }
    let y = if y.is_odd() == want_odd { y } else { y.neg() };
    let point = fistful_crypto::secp256k1::Affine { x, y, infinity: false };
    point.is_on_curve().then_some(point)
}

/// Right-shift a U256 by two bits.
fn shr2(v: &fistful_crypto::u256::U256) -> fistful_crypto::u256::U256 {
    let l = v.limbs;
    fistful_crypto::u256::U256 {
        limbs: [
            (l[0] >> 2) | (l[1] << 62),
            (l[1] >> 2) | (l[2] << 62),
            (l[2] >> 2) | (l[3] << 62),
            l[3] >> 2,
        ],
    }
}

impl Encodable for Transaction {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.version);
        encode_vec(w, &self.inputs);
        encode_vec(w, &self.outputs);
        w.u32(self.lock_time);
    }
}

impl Decodable for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Transaction {
            version: r.u32()?,
            inputs: decode_vec(r)?,
            outputs: decode_vec(r)?,
            lock_time: r.u32()?,
        })
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tx {} ({} in, {} out)",
            self.txid(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Decodable;

    fn sample_tx() -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn::unsigned(OutPoint {
                txid: sha256d(b"prev"),
                vout: 0,
            })],
            outputs: vec![
                TxOut { value: Amount::from_btc(1), address: Address::from_seed(1) },
                TxOut { value: Amount::from_btc(2), address: Address::from_seed(2) },
            ],
            lock_time: 0,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let tx = sample_tx();
        let bytes = tx.encode_to_vec();
        let decoded = Transaction::decode_all(&bytes).unwrap();
        assert_eq!(decoded, tx);
        assert_eq!(decoded.txid(), tx.txid());
    }

    #[test]
    fn txid_changes_with_content() {
        let tx = sample_tx();
        let mut tx2 = tx.clone();
        tx2.outputs[0].value = Amount::from_btc(3);
        assert_ne!(tx.txid(), tx2.txid());
    }

    #[test]
    fn coinbase_detection() {
        let mut cb = sample_tx();
        cb.inputs = vec![TxIn { prevout: OutPoint::null(), witness: vec![0, 1, 2] }];
        assert!(cb.is_coinbase());
        assert!(!sample_tx().is_coinbase());
        // Two inputs, one null: not a coinbase.
        let mut not_cb = cb.clone();
        not_cb.inputs.push(TxIn::unsigned(OutPoint { txid: sha256d(b"x"), vout: 1 }));
        assert!(!not_cb.is_coinbase());
    }

    #[test]
    fn sighash_ignores_witnesses() {
        let tx = sample_tx();
        let h1 = tx.sighash();
        let mut signed = tx.clone();
        signed.inputs[0].witness = vec![0xaa; 97];
        assert_eq!(signed.sighash(), h1);
        assert_ne!(signed.txid(), tx.txid());
    }

    #[test]
    fn sign_and_verify_input() {
        let key = KeyPair::from_seed(5);
        let spend_addr = Address::from_public_key(key.public());
        let mut tx = sample_tx();
        tx.sign_input(0, &key);
        assert!(tx.verify_input(0, &spend_addr));
        // Wrong expected address fails.
        assert!(!tx.verify_input(0, &Address::from_seed(99)));
        // Out-of-range index fails.
        assert!(!tx.verify_input(5, &spend_addr));
        // Tampering with an output invalidates the signature.
        let mut tampered = tx.clone();
        tampered.outputs[0].value = Amount::from_btc(10);
        assert!(!tampered.verify_input(0, &spend_addr));
    }

    #[test]
    fn unsigned_input_fails_verification() {
        let tx = sample_tx();
        assert!(!tx.verify_input(0, &Address::from_seed(1)));
    }

    #[test]
    fn pubkey_decompression_round_trip() {
        for seed in 1..10u64 {
            let kp = KeyPair::from_seed(seed);
            let compressed = kp.public().to_bytes();
            let point = parse_compressed_pubkey(&compressed).unwrap();
            assert_eq!(point, kp.public().0, "seed {seed}");
        }
    }

    #[test]
    fn pubkey_decompression_rejects_bad_prefix() {
        let mut bytes = KeyPair::from_seed(1).public().to_bytes();
        bytes[0] = 0x05;
        assert!(parse_compressed_pubkey(&bytes).is_none());
    }

    #[test]
    fn output_value_sums() {
        assert_eq!(sample_tx().output_value(), Some(Amount::from_btc(3)));
    }

    #[test]
    fn null_outpoint() {
        assert!(OutPoint::null().is_null());
        assert!(!OutPoint { txid: sha256d(b"a"), vout: 0 }.is_null());
    }
}

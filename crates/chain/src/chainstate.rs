//! The chain manager: accepts blocks, maintains the UTXO set and the
//! resolved analysis view.

use crate::amount::Amount;
use crate::block::Block;
use crate::params::Params;
use crate::resolve::ResolvedChain;
use crate::utxo::UtxoSet;
use crate::validate::{check_block, ValidationError};
use fistful_crypto::hash::Hash256;

/// A validated, linear chain of blocks with derived state.
///
/// `ChainState` owns consensus state (UTXO set, tip) and the
/// [`ResolvedChain`] view that the clustering and flow crates consume. Forks
/// are the network simulator's concern; `ChainState` models the settled
/// chain the paper's analysis downloads.
pub struct ChainState {
    params: Params,
    headers: Vec<(Hash256, u64)>, // (block hash, tx count)
    utxos: UtxoSet,
    resolved: ResolvedChain,
    total_fees: Amount,
}

impl ChainState {
    /// An empty chain with the given parameters.
    pub fn new(params: Params) -> ChainState {
        ChainState {
            params,
            headers: Vec::new(),
            utxos: UtxoSet::new(),
            resolved: ResolvedChain::new(),
            total_fees: Amount::ZERO,
        }
    }

    /// The consensus parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Height of the tip, or `None` before genesis.
    pub fn height(&self) -> Option<u64> {
        (self.headers.len() as u64).checked_sub(1)
    }

    /// The height the next block will occupy.
    pub fn next_height(&self) -> u64 {
        self.headers.len() as u64
    }

    /// Subsidy for the next block.
    pub fn next_subsidy(&self) -> Amount {
        self.params.subsidy_at(self.next_height())
    }

    /// Hash of the tip block (all-zero before genesis).
    pub fn tip_hash(&self) -> Hash256 {
        self.headers.last().map(|(h, _)| *h).unwrap_or(Hash256::ZERO)
    }

    /// The UTXO set.
    pub fn utxos(&self) -> &UtxoSet {
        &self.utxos
    }

    /// The resolved analysis view.
    pub fn resolved(&self) -> &ResolvedChain {
        &self.resolved
    }

    /// Consumes the chain state, returning the resolved view.
    pub fn into_resolved(self) -> ResolvedChain {
        self.resolved
    }

    /// Cumulative fees across all accepted blocks.
    pub fn total_fees(&self) -> Amount {
        self.total_fees
    }

    /// Validates and applies a block on top of the current tip.
    pub fn accept_block(&mut self, block: Block) -> Result<(), ValidationError> {
        let height = self.next_height();
        let tip = self.tip_hash();
        let fees = check_block(&block, &tip, &self.utxos, height, &self.params)?;
        for tx in &block.transactions {
            self.resolved.add_tx(tx, &self.utxos, height, block.header.time);
            self.utxos.apply(tx, height);
        }
        self.total_fees = self
            .total_fees
            .checked_add(fees)
            .expect("fee accumulation overflow");
        self.headers.push((block.hash(), block.transactions.len() as u64));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::builder::{BlockBuilder, TransactionBuilder};
    use crate::transaction::OutPoint;

    #[test]
    fn genesis_and_extension() {
        let params = Params::regtest();
        let mut chain = ChainState::new(params.clone());
        assert_eq!(chain.height(), None);
        assert_eq!(chain.tip_hash(), Hash256::ZERO);

        let miner = Address::from_seed(1);
        let b0 = BlockBuilder::new(&params)
            .coinbase_to(miner, 0, chain.next_subsidy())
            .build_on(&chain);
        chain.accept_block(b0).unwrap();
        assert_eq!(chain.height(), Some(0));
        assert_eq!(chain.utxos().total_value(), Amount::from_btc(50));

        let b1 = BlockBuilder::new(&params)
            .coinbase_to(miner, 1, chain.next_subsidy())
            .build_on(&chain);
        chain.accept_block(b1).unwrap();
        assert_eq!(chain.height(), Some(1));
        assert_eq!(chain.resolved().tx_count(), 2);
    }

    #[test]
    fn rejects_disconnected_block() {
        let params = Params::regtest();
        let mut chain = ChainState::new(params.clone());
        let miner = Address::from_seed(1);
        let b0 = BlockBuilder::new(&params)
            .coinbase_to(miner, 0, chain.next_subsidy())
            .build_on(&chain);
        let b0_again = b0.clone();
        chain.accept_block(b0).unwrap();
        // Re-submitting the same block no longer connects.
        assert!(chain.accept_block(b0_again).is_err());
    }

    #[test]
    fn full_spend_cycle_with_fees() {
        let params = Params::regtest();
        let mut chain = ChainState::new(params.clone());
        let miner = Address::from_seed(1);
        let user = Address::from_seed(2);

        let b0 = BlockBuilder::new(&params)
            .coinbase_to(miner, 0, chain.next_subsidy())
            .build_on(&chain);
        let cb_txid = b0.transactions[0].txid();
        chain.accept_block(b0).unwrap();

        // Miner pays user 30, takes 19.9 change, fee 0.1.
        let tx = TransactionBuilder::new()
            .input(OutPoint { txid: cb_txid, vout: 0 })
            .output(user, Amount::from_btc(30))
            .output(miner, Amount::from_sat(19_90000000))
            .build_unsigned();
        let fee_claim = chain
            .next_subsidy()
            .checked_add(Amount::from_sat(10000000))
            .unwrap();
        let b1 = BlockBuilder::new(&params)
            .coinbase_to(miner, 1, fee_claim)
            .tx(tx)
            .build_on(&chain);
        chain.accept_block(b1).unwrap();
        assert_eq!(chain.total_fees(), Amount::from_sat(10000000));
        assert_eq!(chain.resolved().tx_count(), 3);
        // Total supply = 2 subsidies (fees recirculate to the miner).
        assert_eq!(chain.utxos().total_value(), Amount::from_btc(100));
    }
}

//! Fluent builders for transactions and blocks.

use crate::address::Address;
use crate::amount::Amount;
use crate::block::{Block, BlockHeader};
use crate::chainstate::ChainState;
use crate::params::Params;
use crate::transaction::{OutPoint, Transaction, TxIn, TxOut};
use fistful_crypto::keys::KeyPair;

/// Builds a transaction input-by-input, output-by-output.
#[derive(Default)]
pub struct TransactionBuilder {
    inputs: Vec<OutPoint>,
    outputs: Vec<TxOut>,
    lock_time: u32,
}

impl TransactionBuilder {
    /// A fresh builder.
    pub fn new() -> TransactionBuilder {
        TransactionBuilder::default()
    }

    /// Adds an input spending `prevout`.
    pub fn input(mut self, prevout: OutPoint) -> Self {
        self.inputs.push(prevout);
        self
    }

    /// Adds an output paying `value` to `address`.
    pub fn output(mut self, address: Address, value: Amount) -> Self {
        self.outputs.push(TxOut { value, address });
        self
    }

    /// Sets the lock time.
    pub fn lock_time(mut self, lock_time: u32) -> Self {
        self.lock_time = lock_time;
        self
    }

    /// Builds without witnesses (fast mode).
    pub fn build_unsigned(self) -> Transaction {
        Transaction {
            version: 1,
            inputs: self.inputs.into_iter().map(TxIn::unsigned).collect(),
            outputs: self.outputs,
            lock_time: self.lock_time,
        }
    }

    /// Builds and signs every input with the keys returned by `key_for`
    /// (input index → key pair).
    pub fn build_signed<F>(self, key_for: F) -> Transaction
    where
        F: Fn(usize) -> KeyPair,
    {
        let mut tx = self.build_unsigned();
        for i in 0..tx.inputs.len() {
            let key = key_for(i);
            tx.sign_input(i, &key);
        }
        tx
    }
}

/// Builds a block on top of a [`ChainState`] tip.
pub struct BlockBuilder<'a> {
    params: &'a Params,
    transactions: Vec<Transaction>,
}

impl<'a> BlockBuilder<'a> {
    /// A fresh builder.
    pub fn new(params: &'a Params) -> BlockBuilder<'a> {
        BlockBuilder { params, transactions: Vec::new() }
    }

    /// Adds the coinbase paying `value` to `address`; the witness encodes
    /// `height` (plus a tag) so coinbase txids are unique per block.
    pub fn coinbase_to(mut self, address: Address, height: u64, value: Amount) -> Self {
        let mut witness = Vec::with_capacity(16);
        witness.extend_from_slice(b"cb:");
        witness.extend_from_slice(&height.to_le_bytes());
        let coinbase = Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness }],
            outputs: vec![TxOut { value, address }],
            lock_time: 0,
        };
        self.transactions.insert(0, coinbase);
        self
    }

    /// Adds a coinbase with multiple outputs (e.g. a pool paying members
    /// straight from the generation transaction).
    pub fn coinbase_multi(mut self, height: u64, outputs: Vec<(Address, Amount)>) -> Self {
        let mut witness = Vec::with_capacity(16);
        witness.extend_from_slice(b"cb:");
        witness.extend_from_slice(&height.to_le_bytes());
        let coinbase = Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness }],
            outputs: outputs
                .into_iter()
                .map(|(address, value)| TxOut { value, address })
                .collect(),
            lock_time: 0,
        };
        self.transactions.insert(0, coinbase);
        self
    }

    /// Appends a non-coinbase transaction.
    pub fn tx(mut self, tx: Transaction) -> Self {
        self.transactions.push(tx);
        self
    }

    /// Appends many transactions.
    pub fn txs(mut self, txs: impl IntoIterator<Item = Transaction>) -> Self {
        self.transactions.extend(txs);
        self
    }

    /// Assembles the block on `chain`'s tip: sets the previous hash, merkle
    /// root and timestamp, and mines if the parameters demand proof-of-work.
    pub fn build_on(self, chain: &ChainState) -> Block {
        let height = chain.next_height();
        let mut block = Block {
            header: BlockHeader {
                version: 1,
                prev_hash: chain.tip_hash(),
                merkle_root: fistful_crypto::hash::Hash256::ZERO,
                time: self.params.time_at(height),
                nonce: 0,
            },
            transactions: self.transactions,
        };
        block.header.merkle_root = block.computed_merkle_root();
        if self.params.verify_pow {
            block.mine(&self.params.pow_target);
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_crypto::sha256::sha256d;

    #[test]
    fn transaction_builder_shapes() {
        let tx = TransactionBuilder::new()
            .input(OutPoint { txid: sha256d(b"a"), vout: 0 })
            .input(OutPoint { txid: sha256d(b"b"), vout: 3 })
            .output(Address::from_seed(1), Amount::from_btc(1))
            .lock_time(7)
            .build_unsigned();
        assert_eq!(tx.inputs.len(), 2);
        assert_eq!(tx.outputs.len(), 1);
        assert_eq!(tx.lock_time, 7);
        assert!(tx.inputs.iter().all(|i| i.witness.is_empty()));
    }

    #[test]
    fn signed_build_verifies() {
        let key = KeyPair::from_seed(3);
        let addr = Address::from_public_key(key.public());
        let tx = TransactionBuilder::new()
            .input(OutPoint { txid: sha256d(b"prev"), vout: 0 })
            .output(Address::from_seed(9), Amount::from_btc(1))
            .build_signed(|_| key);
        assert!(tx.verify_input(0, &addr));
    }

    #[test]
    fn block_builder_mines_when_required() {
        let mut params = Params::regtest();
        params.verify_pow = true;
        params.pow_target = fistful_crypto::hash::Hash256::from_hex(
            "0fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
        )
        .unwrap();
        let chain = ChainState::new(params.clone());
        let block = BlockBuilder::new(&params)
            .coinbase_to(Address::from_seed(1), 0, Amount::from_btc(50))
            .build_on(&chain);
        assert!(block.header.meets_target(&params.pow_target));
        assert_eq!(block.header.merkle_root, block.computed_merkle_root());
    }

    #[test]
    fn coinbase_multi_outputs() {
        let params = Params::regtest();
        let chain = ChainState::new(params.clone());
        let outs = vec![
            (Address::from_seed(1), Amount::from_btc(30)),
            (Address::from_seed(2), Amount::from_btc(20)),
        ];
        let block = BlockBuilder::new(&params)
            .coinbase_multi(0, outs)
            .build_on(&chain);
        assert!(block.transactions[0].is_coinbase());
        assert_eq!(block.transactions[0].outputs.len(), 2);
    }

    #[test]
    fn coinbase_txids_unique_per_height() {
        let params = Params::regtest();
        let addr = Address::from_seed(1);
        let chain = ChainState::new(params.clone());
        let b0 = BlockBuilder::new(&params)
            .coinbase_to(addr, 0, Amount::from_btc(50))
            .build_on(&chain);
        let b1 = BlockBuilder::new(&params)
            .coinbase_to(addr, 1, Amount::from_btc(50))
            .build_on(&chain);
        assert_ne!(b0.transactions[0].txid(), b1.transactions[0].txid());
    }
}

//! Descriptive statistics over a resolved chain.
//!
//! Backs the paper's in-text measurements: the share of self-change
//! transactions ("23% of all transactions in the first half of 2013 used
//! self-change addresses"), address reuse, and transaction fan-in/fan-out.

use crate::resolve::{AddressId, ResolvedChain};
use std::collections::HashSet;

/// Summary statistics for a chain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainStats {
    /// All transactions.
    pub transactions: usize,
    /// Coin generations.
    pub coinbases: usize,
    /// Non-coinbase transactions with ≥2 distinct input addresses
    /// (Heuristic 1 fodder).
    pub multi_input: usize,
    /// Non-coinbase transactions where an output address also appears
    /// among the inputs (self-change).
    pub self_change: usize,
    /// Distinct addresses.
    pub addresses: usize,
    /// Addresses that received more than once.
    pub reused_addresses: usize,
    /// Addresses that never spent.
    pub sinks: usize,
    /// Largest input count seen in one transaction.
    pub max_inputs: usize,
    /// Largest output count seen in one transaction.
    pub max_outputs: usize,
}

impl ChainStats {
    /// Self-change transactions as a fraction of spends (the paper's 23%).
    pub fn self_change_rate(&self) -> f64 {
        let spends = self.transactions - self.coinbases;
        if spends == 0 {
            0.0
        } else {
            self.self_change as f64 / spends as f64
        }
    }

    /// Fraction of addresses that received more than once.
    pub fn reuse_rate(&self) -> f64 {
        if self.addresses == 0 {
            0.0
        } else {
            self.reused_addresses as f64 / self.addresses as f64
        }
    }
}

/// Computes summary statistics in one pass.
pub fn chain_stats(chain: &ResolvedChain) -> ChainStats {
    let mut stats = ChainStats {
        transactions: chain.tx_count(),
        addresses: chain.address_count(),
        ..Default::default()
    };
    for tx in &chain.txs {
        if tx.is_coinbase {
            stats.coinbases += 1;
        } else {
            let inputs: HashSet<AddressId> = tx.inputs.iter().map(|i| i.address).collect();
            if inputs.len() >= 2 {
                stats.multi_input += 1;
            }
            if tx.outputs.iter().any(|o| inputs.contains(&o.address)) {
                stats.self_change += 1;
            }
        }
        stats.max_inputs = stats.max_inputs.max(tx.inputs.len());
        stats.max_outputs = stats.max_outputs.max(tx.outputs.len());
    }
    for a in 0..chain.address_count() as AddressId {
        if chain.received_in(a).len() > 1 {
            stats.reused_addresses += 1;
        }
        if chain.is_sink(a) {
            stats.sinks += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::amount::Amount;
    use crate::transaction::{OutPoint, Transaction, TxIn, TxOut};
    use crate::utxo::UtxoSet;

    fn build() -> ResolvedChain {
        let mut rc = ResolvedChain::new();
        let mut utxos = UtxoSet::new();
        let push = |rc: &mut ResolvedChain, utxos: &mut UtxoSet, tx: &Transaction, h: u64| {
            rc.add_tx(tx, utxos, h, h * 600);
            utxos.apply(tx, h);
        };
        let cb = |tag: u64, addr: u64| Transaction {
            version: 1,
            inputs: vec![TxIn { prevout: OutPoint::null(), witness: tag.to_le_bytes().to_vec() }],
            outputs: vec![TxOut { value: Amount::from_btc(50), address: Address::from_seed(addr) }],
            lock_time: 0,
        };
        let c1 = cb(1, 1);
        let c2 = cb(2, 2);
        push(&mut rc, &mut utxos, &c1, 0);
        push(&mut rc, &mut utxos, &c2, 1);
        // Multi-input self-change spend: inputs {1, 2}, change to 1.
        let spend = Transaction {
            version: 1,
            inputs: vec![
                TxIn::unsigned(OutPoint { txid: c1.txid(), vout: 0 }),
                TxIn::unsigned(OutPoint { txid: c2.txid(), vout: 0 }),
            ],
            outputs: vec![
                TxOut { value: Amount::from_btc(60), address: Address::from_seed(3) },
                TxOut { value: Amount::from_btc(40), address: Address::from_seed(1) },
            ],
            lock_time: 0,
        };
        push(&mut rc, &mut utxos, &spend, 2);
        rc
    }

    #[test]
    fn counts_are_exact() {
        let rc = build();
        let s = chain_stats(&rc);
        assert_eq!(s.transactions, 3);
        assert_eq!(s.coinbases, 2);
        assert_eq!(s.multi_input, 1);
        assert_eq!(s.self_change, 1);
        assert_eq!(s.addresses, 3);
        // Address 1 received twice (coinbase + change).
        assert_eq!(s.reused_addresses, 1);
        // Addresses 1 and 2 both spent; only address 3 never did.
        assert_eq!(s.sinks, 1);
        assert_eq!(s.max_inputs, 2);
        assert_eq!(s.max_outputs, 2);
        assert!((s.self_change_rate() - 1.0).abs() < 1e-9);
    }
}

//! On-disk, page-aligned columnar artifact store.
//!
//! The workspace builds three artifact families that are expensive to
//! recompute but cheap to describe as flat arrays: the resolved chain's
//! columns, `TxGraph`'s CSR arrays, and `ClusterSnapshot`'s assignment
//! column. This crate gives all three one persistence substrate: a
//! versioned, checksummed container file holding named, 4096-aligned,
//! length-prefixed **column segments**, so a reader reconstructs each
//! artifact with bulk `read_exact` calls into pre-sized buffers — no
//! per-element decode on the open path.
//!
//! * [`container`] — the file format: [`StoreWriter`] builds a container,
//!   [`Store`] opens one with O(TOC) validation and lazy per-segment
//!   checksum verification, [`StoreError`] diagnoses each corruption
//!   class distinctly.
//! * [`chaincol`] — the chain codec: [`write_chain`]/[`read_chain`]
//!   persist a `ResolvedChain` via its `ChainColumns` projection and
//!   replay-validate on read.
//!
//! Higher artifacts ( `TxGraph`, `ClusterSnapshot`, delta snapshots, the
//! serve bundle) define their own segment schemas in their own crates on
//! top of [`StoreWriter`]/[`Store`]; this crate knows nothing about them
//! beyond the container contract.
//!
//! # Example
//!
//! ```
//! use fistful_store::{Store, StoreWriter};
//!
//! let mut w = StoreWriter::new();
//! w.segment("demo/ids", vec![1, 0, 0, 0, 2, 0, 0, 0]);
//! let file = w.to_bytes();
//!
//! let mut store = Store::open_bytes(file).unwrap();
//! assert_eq!(store.u32s("demo/ids").unwrap(), vec![1, 2]);
//! ```

#![warn(missing_docs)]

pub mod chaincol;
pub mod container;

pub use chaincol::{read_chain, write_chain};
pub use container::{Store, StoreError, StoreWriter, PAGE, STORE_MAGIC, STORE_VERSION};

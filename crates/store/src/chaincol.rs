//! Chain container codec: a [`ResolvedChain`] as one segment per column.
//!
//! The segment schema (all integers little-endian):
//!
//! | segment              | element | per        | contents                    |
//! |----------------------|---------|------------|-----------------------------|
//! | `chain/meta`         | u64 ×2  | file       | tx count, address count     |
//! | `chain/height`       | u64     | tx         | containing block height     |
//! | `chain/time`         | u64     | tx         | containing block timestamp  |
//! | `chain/coinbase`     | u8      | tx         | 1 for coin generations      |
//! | `chain/txid`         | 32 B    | tx         | txid bytes, concatenated    |
//! | `chain/in_start`     | u32     | tx (+1)    | CSR prefix into input slots |
//! | `chain/in_addr`      | u32     | input slot | spent output's address id   |
//! | `chain/in_value`     | u64     | input slot | spent output's satoshis     |
//! | `chain/in_prev_tx`   | u32     | input slot | funding transaction id      |
//! | `chain/in_prev_vout` | u32     | input slot | output index within it      |
//! | `chain/out_start`    | u32     | tx (+1)    | CSR prefix into output slots|
//! | `chain/out_addr`     | u32     | output slot| receiving address id        |
//! | `chain/out_value`    | u64     | output slot| satoshis                    |
//! | `chain/addr`         | 20 B    | address id | hash160 payload bytes       |
//!
//! Derived state (`spent_by` backlinks, interning indexes, block spans,
//! per-address event lists) is **not** stored;
//! [`ChainColumns::into_chain`] replays the columns through the same
//! validation `ResolvedChain::add_tx` enforces and rebuilds it, so a
//! corrupt file can only fail — never load inconsistent.

use crate::container::{Store, StoreError, StoreWriter};
use fistful_chain::columns::{ChainColumns, ADDRESS_WIDTH, TXID_WIDTH};
use fistful_chain::encode::Writer;
use fistful_chain::resolve::ResolvedChain;

/// Serializes a u32 column to its little-endian byte image.
pub fn u32_col(vs: &[u32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32_slice(vs);
    w.into_bytes()
}

/// Serializes a u64 column to its little-endian byte image.
pub fn u64_col(vs: &[u64]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64_slice(vs);
    w.into_bytes()
}

/// Adds a chain's columns to `out`, one segment per column.
pub fn write_chain(chain: &ResolvedChain, out: &mut StoreWriter) {
    let cols = chain.to_columns();
    let mut meta = Writer::new();
    meta.u64(cols.tx_count() as u64);
    meta.u64(cols.address_count() as u64);
    out.segment("chain/meta", meta.into_bytes());
    out.segment("chain/height", u64_col(&cols.height));
    out.segment("chain/time", u64_col(&cols.time));
    out.segment("chain/coinbase", cols.coinbase);
    out.segment("chain/txid", cols.txid);
    out.segment("chain/in_start", u32_col(&cols.in_start));
    out.segment("chain/in_addr", u32_col(&cols.in_addr));
    out.segment("chain/in_value", u64_col(&cols.in_value));
    out.segment("chain/in_prev_tx", u32_col(&cols.in_prev_tx));
    out.segment("chain/in_prev_vout", u32_col(&cols.in_prev_vout));
    out.segment("chain/out_start", u32_col(&cols.out_start));
    out.segment("chain/out_addr", u32_col(&cols.out_addr));
    out.segment("chain/out_value", u64_col(&cols.out_value));
    out.segment("chain/addr", cols.address);
}

/// Reads the chain columns back and replay-validates them into a
/// [`ResolvedChain`].
pub fn read_chain(store: &mut Store) -> Result<ResolvedChain, StoreError> {
    let meta = store.bytes("chain/meta")?;
    let mut r = fistful_chain::encode::Reader::new(&meta);
    let tx_count = r.u64().map_err(StoreError::Decode)? as usize;
    let addr_count = r.u64().map_err(StoreError::Decode)? as usize;
    r.finish().map_err(StoreError::Decode)?;

    let cols = ChainColumns {
        height: store.u64s("chain/height")?,
        time: store.u64s("chain/time")?,
        coinbase: store.bytes("chain/coinbase")?,
        txid: store.bytes("chain/txid")?,
        in_start: store.u32s("chain/in_start")?,
        in_addr: store.u32s("chain/in_addr")?,
        in_value: store.u64s("chain/in_value")?,
        in_prev_tx: store.u32s("chain/in_prev_tx")?,
        in_prev_vout: store.u32s("chain/in_prev_vout")?,
        out_start: store.u32s("chain/out_start")?,
        out_addr: store.u32s("chain/out_addr")?,
        out_value: store.u64s("chain/out_value")?,
        address: store.bytes("chain/addr")?,
    };
    // The meta counts exist so dimension mismatches are caught before the
    // replay pass produces a confusing invariant message.
    if cols.tx_count() != tx_count
        || cols.txid.len() != tx_count * TXID_WIDTH
        || cols.address.len() != addr_count * ADDRESS_WIDTH
    {
        return Err(StoreError::Inconsistent("chain meta counts disagree with columns"));
    }
    cols.into_chain().map_err(StoreError::Inconsistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fistful_chain::builder::BlockBuilder;
    use fistful_chain::chainstate::ChainState;
    use fistful_chain::params::Params;
    use fistful_chain::Address;

    fn small_chain() -> ChainState {
        let params = Params::regtest();
        let mut chain = ChainState::new(params.clone());
        for i in 0..6u64 {
            let block = BlockBuilder::new(&params)
                .coinbase_to(Address::from_seed(i), chain.next_height(), chain.next_subsidy())
                .build_on(&chain);
            chain.accept_block(block).unwrap();
        }
        chain
    }

    #[test]
    fn chain_round_trips_through_container() {
        let chain = small_chain();
        let resolved = chain.resolved();
        let mut w = StoreWriter::new();
        write_chain(resolved, &mut w);
        let mut store = Store::open_bytes(w.to_bytes()).unwrap();
        let reread = read_chain(&mut store).unwrap();
        // Compare through the lossless columnar projection: ResolvedChain
        // has no PartialEq, but equal columns + replay-derived state means
        // equal chains.
        assert_eq!(resolved.to_columns(), reread.to_columns());
        assert_eq!(resolved.tx_count(), reread.tx_count());
        assert_eq!(resolved.address_count(), reread.address_count());
    }

    #[test]
    fn missing_column_is_reported_by_name() {
        let chain = small_chain();
        let mut w = StoreWriter::new();
        write_chain(chain.resolved(), &mut w);
        // Rebuild the container without one column.
        let mut partial = StoreWriter::new();
        let mut full = Store::open_bytes(w.to_bytes()).unwrap();
        let names: Vec<String> = full.segment_names().map(str::to_string).collect();
        for name in &names {
            if name != "chain/out_value" {
                let bytes = full.bytes(name).unwrap();
                partial.segment(name, bytes);
            }
        }
        let mut store = Store::open_bytes(partial.to_bytes()).unwrap();
        assert!(matches!(
            read_chain(&mut store),
            Err(StoreError::MissingSegment(n)) if n == "chain/out_value"
        ));
    }

    #[test]
    fn meta_disagreement_is_inconsistent() {
        let chain = small_chain();
        let mut w = StoreWriter::new();
        write_chain(chain.resolved(), &mut w);
        let mut full = Store::open_bytes(w.to_bytes()).unwrap();
        let mut forged = StoreWriter::new();
        let names: Vec<String> = full.segment_names().map(str::to_string).collect();
        for name in &names {
            let bytes = full.bytes(name).unwrap();
            if name == "chain/meta" {
                let mut meta = Writer::new();
                meta.u64(999);
                meta.u64(999);
                forged.segment(name, meta.into_bytes());
            } else {
                forged.segment(name, bytes);
            }
        }
        let mut store = Store::open_bytes(forged.to_bytes()).unwrap();
        assert!(matches!(read_chain(&mut store), Err(StoreError::Inconsistent(_))));
    }
}

//! The container file format: magic, version, a checksummed TOC, and
//! named page-aligned column segments.
//!
//! # File layout (version 1)
//!
//! ```text
//! offset 0                                     page boundary (4096)
//! ┌──────────────┬─────────────┬──────┬────────┬─────────┬──────┬─────
//! │ fixed header │  TOC block  │ zero │ segment│  zero   │ seg- │ ...
//! │   56 bytes   │  (toc_len)  │ pad  │   0    │  pad    │ ment │
//! └──────────────┴─────────────┴──────┴────────┴─────────┴──────┴─────
//! ```
//!
//! Fixed header (56 bytes):
//!
//! | offset | bytes | contents                                       |
//! |--------|-------|------------------------------------------------|
//! | 0      | 4     | magic `"FSTC"` ([`STORE_MAGIC`])               |
//! | 4      | 1     | version ([`STORE_VERSION`], currently `1`)     |
//! | 5      | 3     | zero                                           |
//! | 8      | 8     | declared total file length, u64 little-endian  |
//! | 16     | 8     | TOC block byte length, u64 little-endian       |
//! | 24     | 32    | double-SHA-256 of the TOC block                |
//!
//! The TOC block is a `CompactSize` segment count followed by one entry
//! per segment: `name` (`CompactSize`-length-prefixed UTF-8), `offset`
//! (u64), `len` (u64), and the segment's own double-SHA-256 checksum
//! (32 bytes). Every segment offset is a multiple of [`PAGE`] (4096);
//! the gaps between TOC, segments, and the declared end of file are zero
//! padding. Segments are laid out in TOC order, ascending, without
//! overlap.
//!
//! # Why a declared length and two checksum layers
//!
//! The declared `file_len` makes truncation ([`StoreError::Truncated`])
//! and appended garbage ([`StoreError::TrailingBytes`]) two *different*
//! diagnoses, exactly as the snapshot frame format does with its payload
//! length. The TOC checksum protects the metadata that all other reads
//! depend on; per-segment checksums are verified lazily on each segment
//! read, so opening a store costs O(TOC) — not O(file) — and a reader
//! that never touches a corrupt column never pays for it, while any read
//! of the corrupt column itself fails loudly
//! ([`StoreError::SegmentChecksumMismatch`]).

use fistful_chain::encode::{DecodeError, Reader, Writer};
use fistful_crypto::sha256::sha256d;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// The four magic bytes opening every container file.
pub const STORE_MAGIC: [u8; 4] = *b"FSTC";

/// The current container-format version.
pub const STORE_VERSION: u8 = 1;

/// Segment alignment: every segment starts on a 4096-byte page boundary,
/// so a future `mmap`-based reader can hand out page-aligned column
/// slices directly.
pub const PAGE: u64 = 4096;

/// Byte length of the fixed header.
pub const HEADER_LEN: u64 = 56;

/// Maximum number of segments a TOC may declare. Real artifact files hold
/// a few dozen; anything larger is corrupt input.
pub const MAX_SEGMENTS: u64 = 1 << 16;

/// Maximum byte length of a segment name.
pub const MAX_NAME_LEN: usize = 256;

/// Errors from writing, opening, or reading a container file. Each
/// corruption class gets its own variant so a bad file is diagnosed, not
/// just refused (mirroring `fistful_core::snapshot::SnapshotError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The first four bytes were not [`STORE_MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte named a format this build cannot read.
    UnsupportedVersion(u8),
    /// The file ended before its declared length (header, TOC, or a
    /// segment extends past the end).
    Truncated,
    /// The file is longer than its declared length.
    TrailingBytes,
    /// The double-SHA-256 of the TOC block did not match the header.
    TocChecksumMismatch,
    /// The double-SHA-256 of the named segment did not match its TOC
    /// entry.
    SegmentChecksumMismatch(String),
    /// Two TOC entries claim overlapping byte ranges.
    OverlappingSegments(String, String),
    /// A segment's offset is not a multiple of [`PAGE`], or lies inside
    /// the header/TOC region.
    MisalignedSegment(String),
    /// Two TOC entries share a name.
    DuplicateSegment(String),
    /// A reader asked for a segment the TOC does not list.
    MissingSegment(String),
    /// The TOC block failed structural decoding.
    Decode(DecodeError),
    /// The segments decoded but violated a semantic invariant of the
    /// artifact being loaded (wrong column width, disagreeing lengths,
    /// out-of-range references).
    Inconsistent(&'static str),
    /// An I/O error from the underlying file.
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic(m) => write!(f, "bad store magic {m:02x?}"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store version {v} (supported: {STORE_VERSION})")
            }
            StoreError::Truncated => write!(f, "store file truncated"),
            StoreError::TrailingBytes => write!(f, "trailing bytes after declared store length"),
            StoreError::TocChecksumMismatch => write!(f, "store TOC checksum mismatch"),
            StoreError::SegmentChecksumMismatch(name) => {
                write!(f, "segment {name:?} checksum mismatch")
            }
            StoreError::OverlappingSegments(a, b) => {
                write!(f, "segments {a:?} and {b:?} overlap")
            }
            StoreError::MisalignedSegment(name) => {
                write!(f, "segment {name:?} is not page-aligned")
            }
            StoreError::DuplicateSegment(name) => write!(f, "duplicate segment {name:?}"),
            StoreError::MissingSegment(name) => write!(f, "missing segment {name:?}"),
            StoreError::Decode(e) => write!(f, "store TOC decode: {e}"),
            StoreError::Inconsistent(what) => write!(f, "inconsistent store artifact: {what}"),
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> StoreError {
        StoreError::Decode(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated
        } else {
            StoreError::Io(e.to_string())
        }
    }
}

/// One TOC entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SegmentEntry {
    name: String,
    offset: u64,
    len: u64,
    checksum: [u8; 32],
}

/// Builds a container file segment by segment, then writes it in one
/// shot.
///
/// Segments are laid out in insertion order, each on a [`PAGE`] boundary.
/// The builder owns the segment bytes until [`write_to`](Self::write_to)
/// or [`to_bytes`](Self::to_bytes) assembles the file, so the caller can
/// hand over columns as it produces them.
#[derive(Default)]
pub struct StoreWriter {
    segments: Vec<(String, Vec<u8>)>,
}

impl StoreWriter {
    /// An empty builder.
    pub fn new() -> StoreWriter {
        StoreWriter::default()
    }

    /// Adds a named segment. Panics on a duplicate or oversized name —
    /// segment names are compile-time constants of the artifact codecs,
    /// so a collision is a programming error, not input corruption.
    pub fn segment(&mut self, name: &str, bytes: Vec<u8>) {
        assert!(
            name.len() <= MAX_NAME_LEN && !name.is_empty(),
            "segment name must be 1..={MAX_NAME_LEN} bytes"
        );
        assert!(
            self.segments.iter().all(|(n, _)| n != name),
            "duplicate segment name {name:?}"
        );
        self.segments.push((name.to_string(), bytes));
    }

    /// Number of segments added so far.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Assembles the complete container file.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Lay out segments first: offsets depend only on the TOC length,
        // which depends on names and counts — not on segment contents —
        // so compute the TOC size with placeholder offsets, then fill in
        // the real ones.
        let toc_len = {
            let mut toc = Writer::new();
            toc.compact_size(self.segments.len() as u64);
            for (name, bytes) in &self.segments {
                toc.string(name);
                toc.u64(0);
                toc.u64(bytes.len() as u64);
                toc.bytes(&[0u8; 32]);
            }
            toc.len() as u64
        };
        let first_page = (HEADER_LEN + toc_len).div_ceil(PAGE) * PAGE;
        let mut offsets = Vec::with_capacity(self.segments.len());
        let mut cursor = first_page;
        for (_, bytes) in &self.segments {
            offsets.push(cursor);
            cursor += (bytes.len() as u64).div_ceil(PAGE) * PAGE;
        }
        let file_len = cursor;

        let mut toc = Writer::new();
        toc.compact_size(self.segments.len() as u64);
        for ((name, bytes), &offset) in self.segments.iter().zip(&offsets) {
            toc.string(name);
            toc.u64(offset);
            toc.u64(bytes.len() as u64);
            toc.bytes(&sha256d(bytes).0);
        }
        let toc = toc.into_bytes();
        debug_assert_eq!(toc.len() as u64, toc_len);

        let mut w = Writer::new();
        w.bytes(&STORE_MAGIC);
        w.u8(STORE_VERSION);
        w.bytes(&[0u8; 3]);
        w.u64(file_len);
        w.u64(toc_len);
        w.bytes(&sha256d(&toc).0);
        w.bytes(&toc);
        w.pad_to(PAGE as usize);
        for (_, bytes) in &self.segments {
            w.bytes(bytes);
            w.pad_to(PAGE as usize);
        }
        let out = w.into_bytes();
        debug_assert_eq!(out.len() as u64, file_len);
        out
    }

    /// Writes the container file to `path`, returning the bytes written.
    pub fn write_to(&self, path: &Path) -> Result<u64, StoreError> {
        let bytes = self.to_bytes();
        std::fs::write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }
}

/// The readable side of `Read + Seek`, boxed so a [`Store`] can wrap a
/// file on disk or an in-memory buffer behind one type.
trait ReadSeek: Read + Seek + Send {}
impl<T: Read + Seek + Send> ReadSeek for T {}

/// An opened container file: the validated TOC plus a seekable source.
///
/// [`Store::open`] reads and verifies only the header and TOC — O(number
/// of segments), independent of file size. Segment reads
/// ([`bytes`](Self::bytes), [`u32s`](Self::u32s), [`u64s`](Self::u64s))
/// seek to the page-aligned offset, `read_exact` into one pre-sized
/// buffer, and verify the segment checksum — no per-element decode
/// anywhere on the open path.
pub struct Store {
    src: Box<dyn ReadSeek>,
    entries: Vec<SegmentEntry>,
}

impl Store {
    /// Opens and validates a container file on disk.
    pub fn open(path: &Path) -> Result<Store, StoreError> {
        let file = std::fs::File::open(path)?;
        Store::from_source(Box::new(file))
    }

    /// Opens a container held in memory (tests, corruption probes).
    pub fn open_bytes(bytes: Vec<u8>) -> Result<Store, StoreError> {
        Store::from_source(Box::new(std::io::Cursor::new(bytes)))
    }

    fn from_source(mut src: Box<dyn ReadSeek>) -> Result<Store, StoreError> {
        let actual_len = src.seek(SeekFrom::End(0))?;
        src.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; HEADER_LEN as usize];
        src.read_exact(&mut header)?;
        let magic: [u8; 4] = header[..4].try_into().expect("4 bytes");
        if magic != STORE_MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        if header[4] != STORE_VERSION {
            return Err(StoreError::UnsupportedVersion(header[4]));
        }
        let file_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let toc_len = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let toc_checksum: [u8; 32] = header[24..56].try_into().expect("32 bytes");
        if actual_len < file_len {
            return Err(StoreError::Truncated);
        }
        if actual_len > file_len {
            return Err(StoreError::TrailingBytes);
        }
        if HEADER_LEN.checked_add(toc_len).map_or(true, |end| end > file_len) {
            return Err(StoreError::Truncated);
        }
        let mut toc = vec![0u8; toc_len as usize];
        src.read_exact(&mut toc)?;
        if sha256d(&toc).0 != toc_checksum {
            return Err(StoreError::TocChecksumMismatch);
        }

        // Decode and validate the entries.
        let mut r = Reader::new(&toc);
        let count = r.compact_size()?;
        if count > MAX_SEGMENTS {
            return Err(StoreError::Decode(DecodeError::OversizedCount(count)));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = r.string()?;
            let offset = r.u64()?;
            let len = r.u64()?;
            let mut checksum = [0u8; 32];
            checksum.copy_from_slice(r.take(32)?);
            entries.push(SegmentEntry { name, offset, len, checksum });
        }
        r.finish()?;
        let data_start = (HEADER_LEN + toc_len).div_ceil(PAGE) * PAGE;
        for e in &entries {
            if e.offset % PAGE != 0 || e.offset < data_start {
                return Err(StoreError::MisalignedSegment(e.name.clone()));
            }
            if e.offset.checked_add(e.len).map_or(true, |end| end > file_len) {
                return Err(StoreError::Truncated);
            }
        }
        let mut by_offset: Vec<&SegmentEntry> = entries.iter().collect();
        by_offset.sort_by_key(|e| e.offset);
        for pair in by_offset.windows(2) {
            if pair[0].offset + pair[0].len > pair[1].offset {
                return Err(StoreError::OverlappingSegments(
                    pair[0].name.clone(),
                    pair[1].name.clone(),
                ));
            }
        }
        let mut names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(StoreError::DuplicateSegment(dup[0].to_string()));
        }
        Ok(Store { src, entries })
    }

    /// Segment names, in file order.
    pub fn segment_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.entries.len()
    }

    /// True if the TOC lists `name`.
    pub fn has(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Byte length of segment `name`, if present.
    pub fn segment_len(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|e| e.name == name).map(|e| e.len)
    }

    /// Reads segment `name` into one pre-sized buffer and verifies its
    /// checksum.
    pub fn bytes(&mut self, name: &str) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| StoreError::MissingSegment(name.to_string()))?
            .clone();
        self.src.seek(SeekFrom::Start(entry.offset))?;
        let mut buf = vec![0u8; entry.len as usize];
        self.src.read_exact(&mut buf)?;
        if sha256d(&buf).0 != entry.checksum {
            return Err(StoreError::SegmentChecksumMismatch(entry.name));
        }
        Ok(buf)
    }

    /// Reads segment `name` as a column of little-endian u32s.
    pub fn u32s(&mut self, name: &str) -> Result<Vec<u32>, StoreError> {
        let bytes = self.bytes(name)?;
        if bytes.len() % 4 != 0 {
            return Err(StoreError::Inconsistent("u32 column length is not a multiple of 4"));
        }
        let mut r = Reader::new(&bytes);
        Ok(r.u32_vec(bytes.len() / 4)?)
    }

    /// Reads segment `name` as a column of little-endian u64s.
    pub fn u64s(&mut self, name: &str) -> Result<Vec<u64>, StoreError> {
        let bytes = self.bytes(name)?;
        if bytes.len() % 8 != 0 {
            return Err(StoreError::Inconsistent("u64 column length is not a multiple of 8"));
        }
        let mut r = Reader::new(&bytes);
        Ok(r.u64_vec(bytes.len() / 8)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreWriter {
        let mut w = StoreWriter::new();
        w.segment("alpha", vec![1, 2, 3, 4, 5]);
        w.segment("beta/u32", (0u32..1500).flat_map(|v| v.to_le_bytes()).collect());
        w.segment("gamma", Vec::new()); // empty segments are legal
        w
    }

    #[test]
    fn round_trips_and_reads_back() {
        let bytes = sample().to_bytes();
        assert_eq!(&bytes[..4], &STORE_MAGIC);
        assert_eq!(bytes.len() as u64 % PAGE, 0);
        let mut store = Store::open_bytes(bytes).unwrap();
        assert_eq!(store.segment_count(), 3);
        assert!(store.has("alpha") && store.has("beta/u32") && store.has("gamma"));
        assert_eq!(store.segment_len("alpha"), Some(5));
        assert_eq!(store.segment_len("missing"), None);
        assert_eq!(store.bytes("alpha").unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(store.u32s("beta/u32").unwrap(), (0u32..1500).collect::<Vec<_>>());
        assert_eq!(store.bytes("gamma").unwrap(), Vec::<u8>::new());
        assert!(matches!(
            store.bytes("missing"),
            Err(StoreError::MissingSegment(n)) if n == "missing"
        ));
        // A byte column is not a u32/u64 column.
        assert!(matches!(store.u32s("alpha"), Err(StoreError::Inconsistent(_))));
        assert!(matches!(store.u64s("alpha"), Err(StoreError::Inconsistent(_))));
    }

    #[test]
    fn empty_store_round_trips() {
        let bytes = StoreWriter::new().to_bytes();
        let store = Store::open_bytes(bytes).unwrap();
        assert_eq!(store.segment_count(), 0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("fstc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.fst");
        let written = sample().write_to(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.bytes("alpha").unwrap(), vec![1, 2, 3, 4, 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_are_page_aligned() {
        // Offsets are observable through corruption positions: flip one
        // byte at each declared offset and the matching segment's read —
        // and only that read — must fail.
        let good = sample().to_bytes();
        let store = Store::open_bytes(good.clone()).unwrap();
        let names: Vec<String> = store.segment_names().map(str::to_string).collect();
        for name in &names {
            let len = store.segment_len(name).unwrap();
            if len == 0 {
                continue;
            }
            // Find the segment by brute force: try flipping each page
            // start until exactly this segment's checksum breaks.
            let mut found = false;
            for page_start in (0..good.len() as u64).step_by(PAGE as usize) {
                let mut bad = good.clone();
                bad[page_start as usize] ^= 0x01;
                let Ok(mut s) = Store::open_bytes(bad) else { continue };
                if matches!(
                    s.bytes(name),
                    Err(StoreError::SegmentChecksumMismatch(n)) if &n == name
                ) {
                    found = true;
                    break;
                }
            }
            assert!(found, "segment {name} does not start on a page boundary");
        }
    }

    // ----- the corruption matrix -----

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(Store::open_bytes(bytes), Err(StoreError::BadMagic(_))));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = STORE_VERSION + 1;
        assert_eq!(
            Store::open_bytes(bytes).err(),
            Some(StoreError::UnsupportedVersion(STORE_VERSION + 1))
        );
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        // Any cut — mid-header, mid-TOC, mid-segment — is Truncated (or
        // BadMagic for cuts inside the first four bytes, matching the
        // snapshot suite's convention).
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Store::open_bytes(bytes[..cut].to_vec()).err().unwrap();
            assert!(
                matches!(err, StoreError::Truncated | StoreError::BadMagic(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn truncated_toc_rejected() {
        // A header that declares a TOC longer than the file.
        let mut bytes = sample().to_bytes();
        let huge = (bytes.len() as u64 + 1).to_le_bytes();
        bytes[16..24].copy_from_slice(&huge);
        assert_eq!(Store::open_bytes(bytes).err(), Some(StoreError::Truncated));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(Store::open_bytes(bytes).err(), Some(StoreError::TrailingBytes));
    }

    #[test]
    fn toc_corruption_fails_toc_checksum() {
        // Flip one bit in every TOC byte: always TocChecksumMismatch,
        // before any entry is even decoded.
        let bytes = sample().to_bytes();
        let toc_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        for i in HEADER_LEN as usize..HEADER_LEN as usize + toc_len {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                Store::open_bytes(bad).err(),
                Some(StoreError::TocChecksumMismatch),
                "byte {i}"
            );
        }
    }

    #[test]
    fn segment_corruption_fails_that_segment_only() {
        // Flip a byte inside the first segment's data: open succeeds
        // (lazy verification), the corrupt segment fails, others read
        // fine.
        let bytes = sample().to_bytes();
        let mut bad = bytes.clone();
        let first_page = {
            // First page boundary at or after header+TOC.
            let toc_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
            ((HEADER_LEN + toc_len).div_ceil(PAGE) * PAGE) as usize
        };
        bad[first_page] ^= 0x01;
        let mut store = Store::open_bytes(bad).unwrap();
        assert!(matches!(
            store.bytes("alpha"),
            Err(StoreError::SegmentChecksumMismatch(n)) if n == "alpha"
        ));
        assert!(store.bytes("beta/u32").is_ok());
    }

    /// Rebuilds a container around a hand-forged TOC (recomputing the TOC
    /// checksum and declared length honestly) so semantic TOC lies get
    /// past the checksum layer.
    fn forge(entries: &[(&str, u64, u64)], payload_pages: u64) -> Vec<u8> {
        let mut toc = Writer::new();
        toc.compact_size(entries.len() as u64);
        for (name, offset, len) in entries {
            toc.string(name);
            toc.u64(*offset);
            toc.u64(*len);
            toc.bytes(&[0u8; 32]); // checksum never reached by open()
        }
        let toc = toc.into_bytes();
        let data_start = (HEADER_LEN + toc.len() as u64).div_ceil(PAGE) * PAGE;
        let file_len = data_start + payload_pages * PAGE;
        let mut w = Writer::new();
        w.bytes(&STORE_MAGIC);
        w.u8(STORE_VERSION);
        w.bytes(&[0u8; 3]);
        w.u64(file_len);
        w.u64(toc.len() as u64);
        w.bytes(&sha256d(&toc).0);
        w.bytes(&toc);
        w.pad_to(PAGE as usize);
        let mut out = w.into_bytes();
        out.resize(file_len as usize, 0);
        out
    }

    #[test]
    fn overlapping_segments_rejected() {
        let data = PAGE; // one page past header+TOC region (forge uses 1 TOC page)
        let bytes = forge(&[("a", data, PAGE + 10), ("b", data + PAGE, 16)], 3);
        assert!(matches!(
            Store::open_bytes(bytes),
            Err(StoreError::OverlappingSegments(a, b)) if a == "a" && b == "b"
        ));
    }

    #[test]
    fn misaligned_segment_rejected() {
        // Off a page boundary.
        let bytes = forge(&[("a", PAGE + 8, 8)], 2);
        assert!(matches!(
            Store::open_bytes(bytes),
            Err(StoreError::MisalignedSegment(n)) if n == "a"
        ));
        // Page-aligned but inside the header/TOC region.
        let bytes = forge(&[("a", 0, 8)], 1);
        assert!(matches!(
            Store::open_bytes(bytes),
            Err(StoreError::MisalignedSegment(n)) if n == "a"
        ));
    }

    #[test]
    fn duplicate_segment_rejected() {
        let bytes = forge(&[("a", PAGE, 8), ("a", 2 * PAGE, 8)], 2);
        assert!(matches!(
            Store::open_bytes(bytes),
            Err(StoreError::DuplicateSegment(n)) if n == "a"
        ));
    }

    #[test]
    fn segment_past_declared_end_rejected() {
        let bytes = forge(&[("a", PAGE, PAGE * 10)], 2);
        assert_eq!(Store::open_bytes(bytes).err(), Some(StoreError::Truncated));
    }

    #[test]
    fn display_messages_are_distinct() {
        let errors = [
            StoreError::BadMagic(*b"XXXX"),
            StoreError::UnsupportedVersion(9),
            StoreError::Truncated,
            StoreError::TrailingBytes,
            StoreError::TocChecksumMismatch,
            StoreError::SegmentChecksumMismatch("s".into()),
            StoreError::OverlappingSegments("a".into(), "b".into()),
            StoreError::MisalignedSegment("s".into()),
            StoreError::DuplicateSegment("s".into()),
            StoreError::MissingSegment("s".into()),
            StoreError::Decode(DecodeError::UnexpectedEnd),
            StoreError::Inconsistent("x"),
            StoreError::Io("nope".into()),
        ];
        let mut seen = std::collections::HashSet::new();
        for e in errors {
            assert!(seen.insert(e.to_string()), "duplicate message for {e:?}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate segment name")]
    fn writer_rejects_duplicate_names() {
        let mut w = StoreWriter::new();
        w.segment("a", vec![]);
        w.segment("a", vec![]);
    }
}

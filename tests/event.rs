//! Adversarial socket tests of the event-driven serve loop: for every
//! request type and for every hostile peer shape — slow-loris writers,
//! mid-frame stalls, half-closes, oversized pipelines, thousand-strong
//! idle connection herds — the event server's byte stream must be exactly
//! what the threaded server produces (or the typed error the budget
//! promises), because both loops answer through the same request core.

use fistful::serve::protocol::{frame, FRAME_HEADER_LEN, MAX_REQUEST_PAYLOAD};
use fistful::serve::{
    Client, ErrorCode, EventServeConfig, EventServer, Request, Response, ServeArtifacts,
    ServeConfig, Server, PROTOCOL_MAGIC, PROTOCOL_VERSION,
};
use fistful::sim::SimConfig;
use fistful_bench::{serve_artifacts, theft_loots, Workbench};
use fistful_chain::encode::Encodable;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn fixtures() -> &'static (Workbench, Arc<ServeArtifacts>) {
    static FIX: OnceLock<(Workbench, Arc<ServeArtifacts>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::tiny());
        let artifacts = Arc::new(serve_artifacts(&wb));
        (wb, artifacts)
    })
}

fn start_threaded(workers: usize, cache_entries: usize) -> Server {
    let (_, artifacts) = fixtures();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_entries,
        ..ServeConfig::default()
    };
    Server::start(config, Arc::clone(artifacts)).expect("start threaded server")
}

fn start_event(config: EventServeConfig) -> EventServer {
    let (_, artifacts) = fixtures();
    EventServer::start(config, Arc::clone(artifacts)).expect("start event server")
}

fn event_config(workers: usize, cache_entries: usize) -> EventServeConfig {
    EventServeConfig { workers, cache_entries, ..EventServeConfig::default() }
}

/// The full query sweep both servers must answer identically: every
/// request type, in-range and out-of-range arguments, stats checkpoints
/// interleaved so the counters themselves are compared too.
fn query_sweep() -> Vec<Request> {
    let (wb, artifacts) = fixtures();
    let chain = wb.eco.chain.resolved();
    let loots: Vec<Vec<(u32, u32)>> = theft_loots(chain, &wb.eco.script_report.thefts)
        .into_iter()
        .map(|(_, loot)| loot)
        .collect();
    let n_addr = artifacts.snapshot.address_count() as u32;
    let n_clusters = artifacts.snapshot.cluster_count() as u32;
    let tip = artifacts.snapshot.tip_height();

    let mut sweep = vec![Request::Ping, Request::Stats];
    for a in (0..n_addr + 1).step_by(7) {
        sweep.push(Request::AddressInfo { address: a });
    }
    for c in (0..n_clusters + 1).step_by(5) {
        sweep.push(Request::ClusterSummary { cluster: c });
    }
    sweep.push(Request::Stats);
    for height in (0..=tip + 10).step_by((tip as usize / 8).max(1)) {
        sweep.push(Request::BalancePoint { height });
    }
    for loot in &loots {
        for max_txs in [5u32, 5_000] {
            sweep.push(Request::TaintTrace { loot: loot.clone(), max_txs });
        }
    }
    // Repeat a cacheable prefix so hits diverge from misses, then compare
    // the hit counters as well.
    for a in (0..n_addr + 1).step_by(7) {
        sweep.push(Request::AddressInfo { address: a });
    }
    sweep.push(Request::Stats);
    sweep
}

#[test]
fn event_server_answers_the_whole_sweep_byte_identically_to_threaded() {
    // Fresh server pair, same config, same request sequence: every raw
    // response payload (and its epoch stamp) must match byte for byte —
    // including both Stats checkpoints, so the request/cache counters of
    // the two loops stay in lockstep too.
    let threaded = start_threaded(2, 1024);
    let event = start_event(event_config(2, 1024));
    let mut ct = Client::connect(threaded.local_addr()).expect("connect threaded");
    let mut ce = Client::connect(event.local_addr()).expect("connect event");

    for (i, request) in query_sweep().iter().enumerate() {
        let payload = request.encode_to_vec();
        let from_threaded = ct.call_raw(&payload).expect("threaded answer");
        let from_event = ce.call_raw(&payload).expect("event answer");
        assert_eq!(from_threaded, from_event, "request #{i} ({request:?}) diverged");
        assert_eq!(ct.last_epoch(), ce.last_epoch(), "epoch stamp diverged at #{i}");
    }

    let ts = threaded.stats();
    let es = event.stats();
    assert_eq!((ts.requests, ts.cache_hits, ts.cache_misses), (es.requests, es.cache_hits, es.cache_misses));
    event.shutdown();
    threaded.shutdown();
}

/// Reads one response frame, returning its payload; `None` on clean EOF.
fn read_raw_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0;
    while filled < FRAME_HEADER_LEN {
        match stream.read(&mut header[filled..]).expect("read header") {
            0 if filled == 0 => return None,
            0 => panic!("connection closed mid-frame"),
            n => filled += n,
        }
    }
    assert_eq!(header[..4], PROTOCOL_MAGIC);
    assert_eq!(header[4], PROTOCOL_VERSION);
    let len = u32::from_le_bytes(header[5..].try_into().unwrap()) as usize;
    let mut epoch = [0u8; 8];
    stream.read_exact(&mut epoch).expect("read epoch");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("read payload");
    Some(payload)
}

/// Collects every frame a server sends for `bytes` until it closes.
fn stream_response(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut frames = Vec::new();
    while let Some(payload) = read_raw_frame(&mut stream) {
        frames.push(payload);
    }
    frames
}

#[test]
fn malformed_frames_get_identical_typed_errors_from_both_loops() {
    let threaded = start_threaded(2, 0);
    let event = start_event(event_config(2, 0));

    let mut bad_magic = Request::Ping.to_frame();
    bad_magic[0] = b'X';
    let mut bad_version = Request::Ping.to_frame();
    bad_version[4] = PROTOCOL_VERSION + 1;
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&PROTOCOL_MAGIC);
    oversized.push(PROTOCOL_VERSION);
    oversized.extend_from_slice(&(MAX_REQUEST_PAYLOAD + 1).to_le_bytes());
    let bad_loot = Request::TaintTrace { loot: vec![(u32::MAX - 1, 0)], max_txs: 10 };

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("bad magic", bad_magic),
        ("bad version", bad_version),
        ("oversized declared length", oversized),
        ("unknown request type", frame(&[0x07, 0x01, 0x02])),
        ("empty payload", frame(&[])),
        ("impossible loot", bad_loot.to_frame()),
        // A valid request pipelined *before* the poison: the answer must
        // arrive intact, then the error, then the close.
        ("good ping then bad magic", {
            let mut blob = Request::Ping.to_frame();
            let mut poison = Request::Ping.to_frame();
            poison[0] = b'X';
            blob.extend_from_slice(&poison);
            blob
        }),
    ];
    for (name, bytes) in cases {
        let from_threaded = stream_response(threaded.local_addr(), &bytes);
        let from_event = stream_response(event.local_addr(), &bytes);
        assert_eq!(from_threaded, from_event, "{name}: byte streams diverged");
        let last = from_event.last().expect("at least the error frame");
        match Response::decode_payload(last) {
            Ok(Response::Error(_)) => {}
            other => panic!("{name}: expected a trailing error frame, got {other:?}"),
        }
    }
    event.shutdown();
    threaded.shutdown();
}

#[test]
fn slow_loris_single_byte_writes_still_get_served() {
    // One byte per write with a pause between: the frame trickles in far
    // below any sane line rate, but each byte is progress, so the
    // mid-frame deadline never fires and both loops answer normally.
    let threaded = start_threaded(1, 0);
    let event = start_event(event_config(1, 0));
    for addr in [threaded.local_addr(), event.local_addr()] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request = Request::AddressInfo { address: 3 }.to_frame();
        for byte in &request {
            stream.write_all(std::slice::from_ref(byte)).expect("dribble");
            std::thread::sleep(Duration::from_millis(2));
        }
        let payload = read_raw_frame(&mut stream).expect("a response");
        match Response::decode_payload(&payload) {
            Ok(Response::AddressInfo(_)) => {}
            other => panic!("expected an address report, got {other:?}"),
        }
    }
    event.shutdown();
    threaded.shutdown();
}

#[test]
fn mid_frame_stall_hits_the_deadline_with_a_typed_error() {
    // Shrunk deadline: a peer that starts a frame and goes silent is
    // answered with the same typed error the threaded loop produces for a
    // stalled read (Malformed, "mid-frame read stalled"), then closed.
    let event = start_event(EventServeConfig {
        stalled_ticks: 4,
        ..event_config(1, 0)
    });
    let mut stream = TcpStream::connect(event.local_addr()).expect("connect");
    stream.write_all(&PROTOCOL_MAGIC[..3]).expect("partial header");
    let t0 = Instant::now();
    let payload = read_raw_frame(&mut stream).expect("a deadline error frame");
    match Response::decode_payload(&payload) {
        Ok(Response::Error(e)) => {
            assert_eq!(e.code, ErrorCode::Malformed, "message: {}", e.message);
            assert!(e.message.contains("stalled"), "message: {}", e.message);
        }
        other => panic!("expected the stall error, got {other:?}"),
    }
    assert!(read_raw_frame(&mut stream).is_none(), "connection should close");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "4-tick deadline took {:?}",
        t0.elapsed()
    );
    event.shutdown();
}

#[test]
fn idle_keep_alive_connections_expire_silently() {
    let event = start_event(EventServeConfig {
        keep_alive_ticks: 4,
        ..event_config(1, 0)
    });
    let mut stream = TcpStream::connect(event.local_addr()).expect("connect");
    // No bytes at all: the keep-alive clock runs out and the server
    // closes without an error frame (there is no frame to answer).
    assert!(read_raw_frame(&mut stream).is_none(), "silent close on expiry");
    event.shutdown();
}

#[test]
fn half_close_still_delivers_every_pipelined_response_in_order() {
    // The peer writes a coalesced pipeline and FINs immediately. Both
    // loops owe every response, in request order, byte-identical to each
    // other, then a clean close.
    let (_, artifacts) = fixtures();
    let n_addr = artifacts.snapshot.address_count() as u32;
    let mut requests = vec![Request::Ping];
    for a in (0..n_addr).step_by((n_addr as usize / 6).max(1)) {
        requests.push(Request::AddressInfo { address: a });
    }
    requests.push(Request::BalancePoint { height: artifacts.snapshot.tip_height() });
    let mut blob = Vec::new();
    for request in &requests {
        blob.extend_from_slice(&request.to_frame());
    }

    let threaded = start_threaded(2, 0);
    let event = start_event(event_config(2, 0));
    let from_threaded = stream_response(threaded.local_addr(), &blob);
    let from_event = stream_response(event.local_addr(), &blob);
    assert_eq!(from_event.len(), requests.len(), "every response owed is delivered");
    assert_eq!(from_threaded, from_event, "half-closed pipeline diverged");
    event.shutdown();
    threaded.shutdown();
}

#[test]
fn oversized_pipelines_are_rejected_with_a_typed_busy_error() {
    // A budget of 4 in-flight requests: a single 6-deep burst gets its 4
    // in-budget answers, then the typed Busy rejection, then the close.
    let event = start_event(EventServeConfig {
        max_pipelined: 4,
        ..event_config(1, 0)
    });
    let mut blob = Vec::new();
    for _ in 0..6 {
        blob.extend_from_slice(&Request::Ping.to_frame());
    }
    let mut stream = TcpStream::connect(event.local_addr()).expect("connect");
    stream.write_all(&blob).expect("write burst");
    for i in 0..4 {
        let payload = read_raw_frame(&mut stream).expect("in-budget response");
        assert!(
            matches!(Response::decode_payload(&payload), Ok(Response::Pong)),
            "response #{i} should be a pong"
        );
    }
    let payload = read_raw_frame(&mut stream).expect("the rejection frame");
    match Response::decode_payload(&payload) {
        Ok(Response::Error(e)) => {
            assert_eq!(e.code, ErrorCode::Busy, "message: {}", e.message);
            assert!(e.message.contains("pipelined"), "message: {}", e.message);
        }
        other => panic!("expected the Busy rejection, got {other:?}"),
    }
    assert!(read_raw_frame(&mut stream).is_none(), "closed after the rejection");
    event.shutdown();
}

#[test]
fn connection_cap_sheds_excess_accepts_with_a_typed_busy_error() {
    let event = start_event(EventServeConfig {
        max_connections: 2,
        ..event_config(1, 0)
    });
    let addr = event.local_addr();
    let mut first = Client::connect(addr).expect("connect #1");
    let mut second = Client::connect(addr).expect("connect #2");
    first.ping().expect("capacity for #1");
    second.ping().expect("capacity for #2");

    // The third connection is accepted just long enough to be told why
    // it cannot stay.
    let mut shed = TcpStream::connect(addr).expect("connect #3");
    let payload = read_raw_frame(&mut shed).expect("the shed frame");
    match Response::decode_payload(&payload) {
        Ok(Response::Error(e)) => {
            assert_eq!(e.code, ErrorCode::Busy, "message: {}", e.message);
            assert!(e.message.contains("connection limit"), "message: {}", e.message);
        }
        other => panic!("expected the Busy shed frame, got {other:?}"),
    }
    assert!(read_raw_frame(&mut shed).is_none(), "shed connection closes");
    // Close our half too: a shed socket counts against the cap until its
    // drain completes, and the FIN completes it immediately.
    drop(shed);

    // In-cap connections were untouched, and closing one frees a slot.
    first.ping().expect("#1 still served");
    drop(second);
    std::thread::sleep(Duration::from_millis(100));
    let mut third = Client::connect(addr).expect("connect after a slot freed");
    third.ping().expect("freed slot is served");
    event.shutdown();
}

#[test]
fn a_thousand_idle_connections_do_not_starve_four_workers() {
    // The threaded loop would need 1000 threads (and would starve request
    // 5 forever behind 4 pinned idlers); the event loop holds them all on
    // one poll set. Every sampled idler must still be live *after* fresh
    // connections were served through the same 4 workers.
    let event = start_event(EventServeConfig {
        max_connections: 2048,
        ..event_config(4, 0)
    });
    let addr = event.local_addr();
    let mut herd = Vec::with_capacity(1000);
    for i in 0..1000 {
        herd.push(TcpStream::connect(addr).unwrap_or_else(|e| panic!("idler #{i}: {e}")));
    }

    // Fresh work lands while the herd idles.
    let mut client = Client::connect(addr).expect("fresh connection");
    for request in query_sweep() {
        client.call(&request).expect("served while 1000 idle");
    }

    // Sampled idlers answer too — they were neither starved nor closed.
    for i in (0..herd.len()).step_by(97) {
        let stream = &mut herd[i];
        stream.write_all(&Request::Ping.to_frame()).expect("idler write");
        let payload = read_raw_frame(stream).unwrap_or_else(|| panic!("idler #{i} was dropped"));
        assert!(matches!(Response::decode_payload(&payload), Ok(Response::Pong)));
    }
    let stats = event.stats();
    assert_eq!(stats.workers, 4);
    event.shutdown();
}

#[test]
fn event_shutdown_drains_parsed_requests_and_then_closes() {
    let (_, artifacts) = fixtures();
    let probe = (artifacts.snapshot.address_count() / 3) as u32;
    let event = start_event(event_config(2, 0));
    let addr = event.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let expected = client.address_info(probe).expect("baseline answer");

    // Keep a pipeline in flight while shutdown lands: every frame that
    // arrives must be complete and correct, and the stream must end at a
    // frame boundary.
    let request = Request::AddressInfo { address: probe };
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        event.shutdown();
    });
    let mut served = 0usize;
    loop {
        match client.address_info(probe) {
            Ok(got) => {
                assert_eq!(got, expected, "drained answer intact");
                served += 1;
            }
            Err(fistful::serve::ServeError::Closed | fistful::serve::ServeError::Io(_)) => break,
            Err(other) => panic!("unexpected failure during shutdown: {other} (request {request:?})"),
        }
        if served > 200_000 {
            panic!("event server never shut down");
        }
    }
    stopper.join().expect("shutdown completed");
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            // Some platforms accept-then-reset; either way nothing answers.
            s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
            let _ = s.write_all(&Request::Ping.to_frame());
            let mut buf = [0u8; 1];
            match s.read(&mut buf) {
                Ok(0) | Err(_) => {}
                Ok(_) => panic!("server should no longer answer"),
            }
        }
    }
}

#[test]
fn backpressure_under_a_full_queue_keeps_every_response_correct() {
    // A dispatch queue of 1 behind 1 worker, hammered by pipelined
    // bursts from several connections at once: admission control must
    // slow readers down, never corrupt or reorder anyone's stream.
    let event = start_event(EventServeConfig {
        queue_depth: 1,
        max_pipelined: 8,
        ..event_config(1, 256)
    });
    let addr = event.local_addr();
    let (_, artifacts) = fixtures();
    let n_addr = artifacts.snapshot.address_count() as u32;

    std::thread::scope(|s| {
        for t in 0..4u32 {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..10u32 {
                    let batch: Vec<Request> = (0..8)
                        .map(|k| Request::AddressInfo { address: (t * 31 + round * 7 + k) % (n_addr + 2) })
                        .collect();
                    let responses = client.pipeline(&batch).expect("pipelined batch");
                    assert_eq!(responses.len(), batch.len());
                    for (request, response) in batch.iter().zip(&responses) {
                        let Request::AddressInfo { address } = request else { unreachable!() };
                        let want = artifacts.snapshot.cluster_of(*address);
                        match response {
                            Response::AddressInfo(report) => {
                                assert_eq!(report.as_ref().map(|r| r.cluster), want, "address {address}");
                            }
                            other => panic!("expected an address report, got {other:?}"),
                        }
                    }
                }
            });
        }
    });
    event.shutdown();
}

#[test]
fn write_timeouts_on_the_client_side_never_see_torn_frames() {
    // A reader that drains painfully slowly forces the server to buffer
    // its responses and wait for POLLOUT; the bytes that eventually
    // arrive must still be a perfectly framed, in-order stream.
    let event = start_event(event_config(1, 0));
    let mut stream = TcpStream::connect(event.local_addr()).expect("connect");
    let mut blob = Vec::new();
    let count = 32;
    for _ in 0..count {
        blob.extend_from_slice(&Request::Stats.to_frame());
    }
    stream.write_all(&blob).expect("burst");
    std::thread::sleep(Duration::from_millis(50));
    // Trickle-read the whole backlog a few bytes at a time.
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut received = Vec::new();
    let mut tiny = [0u8; 13];
    loop {
        match stream.read(&mut tiny) {
            Ok(0) => panic!("server closed mid-stream"),
            Ok(n) => {
                received.extend_from_slice(&tiny[..n]);
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("server stopped sending before the stream completed")
            }
            Err(e) => panic!("read failed: {e}"),
        }
        // Count complete frames received so far.
        let mut frames = 0;
        let mut at = 0;
        while received.len() >= at + FRAME_HEADER_LEN {
            let len = u32::from_le_bytes(received[at + 5..at + 9].try_into().unwrap()) as usize;
            let total = FRAME_HEADER_LEN + 8 + len;
            if received.len() < at + total {
                break;
            }
            assert_eq!(received[at..at + 4], PROTOCOL_MAGIC, "torn frame at offset {at}");
            at += total;
            frames += 1;
        }
        if frames == count {
            break;
        }
    }
    event.shutdown();
}

//! End-to-end snapshot integration: a default-scale simulated economy is
//! clustered, named, frozen into a `ClusterSnapshot`, pushed through the
//! wire format, and then interrogated — the paper's "cluster once, then
//! query" workflow — asserting the round trip is lossless, corrupt inputs
//! are rejected with typed errors, and flow analysis over the reloaded
//! artifact matches flow analysis over the live pipeline.

use fistful::core::change::ChangeConfig;
use fistful::core::cluster::{Clusterer, Clustering};
use fistful::core::naming::{name_clusters, NamingReport};
use fistful::core::snapshot::{ClusterSnapshot, SnapshotError, SNAPSHOT_VERSION};
use fistful::core::tagdb::{Tag, TagDb, TagSource};
use fistful::flow::{balance_series, AddressDirectory, ServiceResolver};
use fistful::sim::{generate_tags, Economy, RawTagSource, SimConfig};
use std::sync::OnceLock;

struct Frozen {
    eco: Economy,
    clustering: Clustering,
    names: NamingReport,
    snapshot: ClusterSnapshot,
}

/// Economy + refined clustering + naming + snapshot, built once.
fn frozen() -> &'static Frozen {
    static FROZEN: OnceLock<Frozen> = OnceLock::new();
    FROZEN.get_or_init(|| {
        let eco = Economy::run(SimConfig::default());
        let chain = eco.chain.resolved();
        let mut db = TagDb::new();
        for raw in generate_tags(&eco) {
            let Some(address) = chain.address_id(&raw.address) else { continue };
            let source = match raw.source {
                RawTagSource::OwnTransaction => TagSource::OwnTransaction,
                RawTagSource::SelfSubmitted => TagSource::SelfSubmitted,
                RawTagSource::Forum => TagSource::Forum,
            };
            db.add(Tag { address, service: raw.service, category: raw.category, source });
        }
        let clustering = Clusterer::with_h2(ChangeConfig::naive()).run(chain);
        let names = name_clusters(&clustering, &db);
        let snapshot = ClusterSnapshot::build(chain, &clustering, &names);
        Frozen { eco, clustering, names, snapshot }
    })
}

#[test]
fn round_trip_reproduces_assignments_names_and_aggregates() {
    let f = frozen();
    let chain = f.eco.chain.resolved();
    let bytes = f.snapshot.to_bytes();
    let restored = ClusterSnapshot::from_bytes(&bytes).unwrap();

    // Lossless: the decoded artifact is structurally identical.
    assert_eq!(restored, f.snapshot);
    assert_eq!(restored.address_count(), chain.address_count());
    assert_eq!(restored.cluster_count(), f.clustering.cluster_count());

    // Cluster assignments match the live clustering, address by address.
    for addr in 0..chain.address_count() as u32 {
        assert_eq!(
            restored.cluster_of(addr),
            Some(f.clustering.cluster_of(addr)),
            "address {addr}"
        );
    }

    // Names and categories match the naming report, cluster by cluster.
    assert_eq!(restored.named_cluster_count(), f.names.named_clusters);
    assert_eq!(restored.named_address_count(), f.names.named_addresses);
    for cluster in 0..restored.cluster_count() as u32 {
        let info = restored.info(cluster).unwrap();
        assert_eq!(info.name.as_deref(), f.names.name_of_cluster(cluster), "cluster {cluster}");
        assert_eq!(
            info.category.as_deref(),
            f.names.categories.get(&cluster).map(String::as_str),
            "cluster {cluster}"
        );
        assert_eq!(info.size, f.clustering.sizes[cluster as usize], "cluster {cluster}");
    }

    // Aggregates match an independent recount from the chain.
    let k = restored.cluster_count();
    let mut received = vec![0u64; k];
    let mut spent = vec![0u64; k];
    for tx in &chain.txs {
        for input in &tx.inputs {
            spent[f.clustering.cluster_of(input.address) as usize] += input.value.to_sat();
        }
        for out in &tx.outputs {
            received[f.clustering.cluster_of(out.address) as usize] += out.value.to_sat();
        }
    }
    for cluster in 0..k {
        let info = restored.info(cluster as u32).unwrap();
        assert_eq!(info.received.to_sat(), received[cluster], "cluster {cluster} received");
        assert_eq!(info.spent.to_sat(), spent[cluster], "cluster {cluster} spent");
    }
}

#[test]
fn flow_over_the_reloaded_artifact_matches_the_live_pipeline() {
    let f = frozen();
    let chain = f.eco.chain.resolved();
    let restored = ClusterSnapshot::from_bytes(&f.snapshot.to_bytes()).unwrap();
    let live_dir = AddressDirectory::from_naming(&f.clustering, &f.names);

    // The reloaded snapshot resolves every address exactly as the live
    // naming-built directory does ...
    for addr in 0..chain.address_count() as u32 {
        assert_eq!(
            ServiceResolver::service(&restored, addr),
            live_dir.service(addr),
            "address {addr}"
        );
        assert_eq!(
            ServiceResolver::category(&restored, addr),
            live_dir.category(addr),
            "address {addr}"
        );
    }

    // ... so a flow entry point produces identical output from either.
    let every = (f.eco.cfg.blocks / 8).max(1);
    let from_live = balance_series(chain, &live_dir, every);
    let from_artifact = balance_series(chain, &restored, every);
    assert_eq!(from_live.len(), from_artifact.len());
    for (a, b) in from_live.iter().zip(&from_artifact) {
        assert_eq!(a.height, b.height);
        assert_eq!(a.balances, b.balances);
        assert_eq!(a.supply, b.supply);
        assert_eq!(a.sink_held, b.sink_held);
    }
}

#[test]
fn concurrent_readers_share_one_decoded_snapshot() {
    use std::sync::Arc;
    let f = frozen();
    let snapshot = Arc::new(ClusterSnapshot::from_bytes(&f.snapshot.to_bytes()).unwrap());
    let n = snapshot.address_count() as u32;
    // 8 readers hammer the same Arc, each starting at a different offset;
    // every lookup must agree with the live clustering, and each full pass
    // must see the same named-address coverage.
    let handles: Vec<_> = (0..8u32)
        .map(|t| {
            let snapshot = Arc::clone(&snapshot);
            let start = t * (n / 8);
            std::thread::spawn(move || {
                let mut hits = 0usize;
                for addr in (0..n).map(|i| (start + i) % n) {
                    let c = snapshot.cluster_of(addr).expect("covered");
                    assert_eq!(c, frozen().clustering.cluster_of(addr));
                    if snapshot.service_of(addr).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    let named_hits: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(named_hits as u64, 8 * f.snapshot.named_address_count());
}

#[test]
fn corrupted_truncated_and_wrong_version_inputs_are_rejected() {
    let f = frozen();
    let bytes = f.snapshot.to_bytes();

    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] = b'Z';
    assert!(matches!(
        ClusterSnapshot::from_bytes(&bad),
        Err(SnapshotError::BadMagic(_))
    ));

    // Wrong (future) version.
    let mut bad = bytes.clone();
    bad[4] = SNAPSHOT_VERSION + 7;
    assert_eq!(
        ClusterSnapshot::from_bytes(&bad),
        Err(SnapshotError::UnsupportedVersion(SNAPSHOT_VERSION + 7))
    );

    // Truncation at a sample of prefix lengths (the economy-scale frame is
    // too large to cut everywhere).
    for cut in [0, 3, 4, 5, 12, 13, bytes.len() / 2, bytes.len() - 33, bytes.len() - 1] {
        assert_eq!(
            ClusterSnapshot::from_bytes(&bytes[..cut]),
            Err(SnapshotError::Truncated),
            "cut {cut}"
        );
    }

    // Trailing garbage.
    let mut bad = bytes.clone();
    bad.extend_from_slice(b"junk");
    assert_eq!(
        ClusterSnapshot::from_bytes(&bad),
        Err(SnapshotError::TrailingBytes)
    );

    // Payload bit flips at a sample of positions: caught by the checksum.
    for pos in [13, 20, bytes.len() / 3, bytes.len() / 2, bytes.len() - 40] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x80;
        assert_eq!(
            ClusterSnapshot::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch),
            "pos {pos}"
        );
    }
}

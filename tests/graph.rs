//! Differential tests for the columnar transaction-graph index: the
//! graph-based traversals must be hop-for-hop and record-for-record
//! identical to the legacy per-hop resolver walks, on whole simulated
//! economies — and the batch taint engine must agree with both at every
//! thread count. This suite is what keeps the legacy path honest while
//! `repro` runs on the index.

use fistful::core::change::{self, ChangeConfig};
use fistful::flow::graph::{TaintScratch, TxGraph};
use fistful::flow::movement::{classify_movements, classify_movements_indexed, pattern_string};
use fistful::flow::peel::{follow_chain, follow_chain_indexed, FollowStrategy};
use fistful::flow::theft::{track_theft, track_theft_indexed, track_thefts_batch};
use fistful::flow::track::{service_arrivals, service_arrivals_indexed};
use fistful::sim::SimConfig;
use fistful_bench::{silk_road_starts, theft_loots, Workbench};
use std::sync::Arc;

fn workbench() -> &'static Workbench {
    static WB: std::sync::OnceLock<Workbench> = std::sync::OnceLock::new();
    WB.get_or_init(|| Workbench::build(SimConfig::tiny()))
}

#[test]
fn graph_structure_matches_resolver() {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let graph = TxGraph::build_with_threads(chain, 3);

    assert_eq!(graph.tx_count(), chain.tx_count());
    assert_eq!(graph.address_count(), chain.address_count());
    assert_eq!(graph.output_count(), chain.total_output_count());
    assert_eq!(graph.input_count(), chain.total_input_count());

    // Every output's address/value/spender and every input's source agree
    // with the resolver, and the thread count cannot change the result.
    for (t, tx) in chain.txs.iter().enumerate() {
        let t = t as u32;
        for (v, o) in tx.outputs.iter().enumerate() {
            let flat = graph.flat(t, v as u32);
            assert_eq!(graph.address_of(flat), o.address);
            assert_eq!(graph.value_of(flat), o.value);
            assert_eq!(graph.spender(t, v as u32), o.spent_by);
            assert_eq!(graph.outpoint(flat), (t, v as u32));
        }
        for (slot, input) in tx.inputs.iter().enumerate() {
            assert_eq!(graph.inputs(t)[slot], graph.flat(input.prev_tx, input.prev_vout));
        }
    }
    for a in 0..chain.address_count() as u32 {
        assert_eq!(graph.first_seen(a), Some(chain.first_seen(a)));
        assert_eq!(graph.last_spent(a), chain.last_spent_in(a));
    }
    assert_eq!(graph, TxGraph::build_with_threads(chain, 1));
}

#[test]
fn indexed_peel_identical_over_economy() {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &wb.refined_config());
    let graph = TxGraph::build(chain);

    // Every 13th transaction as a start, both strategies, several bounds.
    for start in (0..chain.tx_count() as u32).step_by(13) {
        for strategy in [FollowStrategy::Strict, FollowStrategy::LargestFallback] {
            for max_hops in [1, 7, 100] {
                let legacy = follow_chain(chain, &labels, start, max_hops, strategy);
                let indexed = follow_chain_indexed(&graph, &labels, start, max_hops, strategy);
                assert_eq!(legacy, indexed, "start {start} {strategy:?} {max_hops}");
            }
        }
    }
}

#[test]
fn silk_road_arrivals_identical_over_economy() {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let Some(sr) = &wb.eco.script_report.silk_road else {
        panic!("tiny scale scripts the Silk Road dissolution");
    };
    let labels = change::identify(chain, &wb.refined_config());
    let snapshot = wb.snapshot();
    let graph = TxGraph::build(chain);
    let starts = silk_road_starts(chain, sr);
    assert!(!starts.is_empty(), "dissolution chains present");

    let (chains, rows) = service_arrivals_indexed(
        &graph,
        &labels,
        &starts,
        100,
        FollowStrategy::LargestFallback,
        &snapshot,
    );
    let legacy: Vec<_> = starts
        .iter()
        .map(|&s| follow_chain(chain, &labels, s, 100, FollowStrategy::LargestFallback))
        .collect();
    assert_eq!(chains, legacy);
    assert_eq!(rows, service_arrivals(&legacy, &snapshot));
}

#[test]
fn theft_traces_identical_and_batch_agrees_at_every_thread_count() {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &wb.refined_config());
    let snapshot = wb.snapshot();
    let graph = TxGraph::build(chain);
    let cases = theft_loots(chain, &wb.eco.script_report.thefts);
    assert!(cases.len() >= 3, "tiny scale scripts several thefts");
    let loots: Vec<Vec<(u32, u32)>> = cases.into_iter().map(|(_, loot)| loot).collect();

    // Legacy, indexed (shared scratch), and batch all agree, including
    // under tight walk bounds.
    for max_txs in [0, 1, 5, 5_000] {
        let legacy: Vec<_> = loots
            .iter()
            .map(|loot| track_theft(chain, loot, &labels, &snapshot, max_txs))
            .collect();
        let mut scratch = TaintScratch::for_graph(&graph);
        let indexed: Vec<_> = loots
            .iter()
            .map(|loot| track_theft_indexed(&graph, loot, &labels, &snapshot, max_txs, &mut scratch))
            .collect();
        assert_eq!(legacy, indexed, "max_txs {max_txs}");
        for threads in [1, 2, 4, 8] {
            let batch = track_thefts_batch(&graph, &loots, &labels, &snapshot, max_txs, threads);
            assert_eq!(batch, legacy, "threads {threads} max_txs {max_txs}");
        }
    }
}

#[test]
fn movement_walks_identical_from_arbitrary_loot() {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &ChangeConfig::naive());
    let graph = TxGraph::build(chain);

    // Treat a deterministic sample of outputs as loot, including
    // multi-source sets that share downstream transactions.
    let mut loot = Vec::new();
    for (t, tx) in chain.txs.iter().enumerate() {
        if !tx.outputs.is_empty() && t % 97 == 0 {
            loot.push((t as u32, (t / 97 % tx.outputs.len()) as u32));
        }
    }
    assert!(loot.len() >= 2);
    for max_txs in [0, 3, 50, 10_000] {
        let legacy = classify_movements(chain, &loot, &labels, max_txs);
        let indexed = classify_movements_indexed(&graph, &loot, &labels, max_txs);
        assert_eq!(legacy, indexed, "max_txs {max_txs}");
        assert_eq!(pattern_string(&legacy), pattern_string(&indexed));
    }
}

#[test]
fn snapshot_pairs_with_graph_from_the_same_chain() {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let snapshot = wb.snapshot();
    let graph = TxGraph::build(chain);
    assert!(snapshot.pairs_with_chain(graph.address_count(), graph.tx_count() as u64));

    // A graph over a different economy must be rejected.
    let mut other_cfg = SimConfig::tiny();
    other_cfg.blocks = 60;
    other_cfg.users = 10;
    let other = Workbench::build(other_cfg);
    let other_graph = TxGraph::build(other.eco.chain.resolved());
    assert!(!snapshot.pairs_with_chain(other_graph.address_count(), other_graph.tx_count() as u64));
}

#[test]
fn graph_is_shareable_across_reader_threads() {
    let wb = workbench();
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &wb.refined_config());
    let graph = Arc::new(TxGraph::build(chain));
    let expected = follow_chain_indexed(&graph, &labels, 0, 100, FollowStrategy::LargestFallback);

    // One Arc<TxGraph>, eight readers, no locks: everyone sees the same
    // traversal.
    std::thread::scope(|s| {
        for _ in 0..8 {
            let graph = Arc::clone(&graph);
            let labels = &labels;
            let expected = &expected;
            s.spawn(move || {
                let got =
                    follow_chain_indexed(&graph, labels, 0, 100, FollowStrategy::LargestFallback);
                assert_eq!(&got, expected);
            });
        }
    });
}

//! Differential soak tests of live artifact hot-swap: a server under
//! continuous concurrent query load while the background pipeline streams
//! blocks in and publishes fresh generations. After every swap, each
//! request type answered over the live socket must be byte-identical to a
//! freshly batch-built `ServeArtifacts` at that epoch; no torn frames, no
//! error frames, and per-connection response epochs must be monotonically
//! nondecreasing. A store-backed soak additionally proves the on-disk
//! base+delta trail reopens to the final published state and that a
//! restarted pipeline resumes (and re-publishes identically) from it.

use fistful::core::tagdb::TagDb;
use fistful::core::{IngestConfig, ShardedIngest};
use fistful::flow::graph::TxGraph;
use fistful::flow::graph::TaintScratch;
use fistful::flow::theft::track_theft_indexed;
use fistful::flow::{balance_series_at, point_at};
use fistful::serve::store::read_live_meta;
use fistful::serve::{
    AddressReport, BalanceReport, Client, ClusterReport, EventServeConfig, EventServer,
    LiveConfig, LivePipeline, Publisher, Request, Response, ServeArtifacts, ServeConfig, Server,
    ServerStats, TaintReport, PROTOCOL_MAGIC, PROTOCOL_VERSION,
};
use fistful::sim::SimConfig;
use fistful_bench::Workbench;
use fistful_chain::encode::Encodable;
use fistful_chain::resolve::{BlockId, ResolvedChain};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};

/// One tiny economy plus the batch-built baseline bundle for every epoch
/// the live pipeline will publish, shared by every soak variant.
struct Fixture {
    wb: Workbench,
    config: LiveConfig,
    baselines: HashMap<u64, Arc<ServeArtifacts>>,
    final_epoch: u64,
    /// Transactions reconciled at epoch 0 — taint loots are drawn from
    /// this prefix so they are valid against every generation.
    warm_cut: usize,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::tiny());
        let mut config = LiveConfig::new(wb.refined_config());
        config.shards = 3;
        config.epoch_blocks = 10;
        config.start_blocks = 20;
        config.balance_every = 5;
        // Pace the stream so clients observe intermediate generations.
        config.block_delay = std::time::Duration::from_millis(2);
        let chain = wb.eco.chain.resolved().clone();
        let (baselines, final_epoch, warm_cut) = baselines(&chain, &wb.tagdb, &config);
        Fixture { wb, config, baselines, final_epoch, warm_cut }
    })
}

/// Replays the chain through an *independent* `ShardedIngest` with the
/// soak configuration, batch-building a full artifact bundle at every
/// point the live pipeline publishes: the warm-up bootstrap (epoch 0),
/// each block whose ingest moves the reconciled cut, and the terminal
/// flush. This is the differential baseline — straight-line batch code
/// against the incremental delta/extend path the pipeline actually runs.
fn baselines(
    chain: &ResolvedChain,
    db: &TagDb,
    config: &LiveConfig,
) -> (HashMap<u64, Arc<ServeArtifacts>>, u64, usize) {
    let mut pipe = ShardedIngest::new(IngestConfig::with_h2(
        config.shards,
        config.epoch_blocks,
        config.change.clone(),
    ));
    let mut map = HashMap::new();
    let take = config.start_blocks.min(chain.block_count());
    for i in 0..take {
        pipe.ingest_block(&chain.block(i as BlockId));
    }
    let warm_cut = pipe.reconciled_txs() as usize;
    map.insert(0u64, bundle_at_cut(&mut pipe, chain, db, config.balance_every));
    let mut last_cut = warm_cut;
    let mut epoch = 0u64;
    for i in take..chain.block_count() {
        pipe.ingest_block(&chain.block(i as BlockId));
        if pipe.reconciled_txs() as usize != last_cut {
            epoch += 1;
            map.insert(epoch, bundle_at_cut(&mut pipe, chain, db, config.balance_every));
            last_cut = pipe.reconciled_txs() as usize;
        }
    }
    pipe.flush(chain);
    epoch += 1;
    map.insert(epoch, bundle_at_cut(&mut pipe, chain, db, config.balance_every));
    assert!(epoch >= 3, "soak needs several generations, got {epoch}");
    assert!(warm_cut >= 8, "warm-up prefix too thin for taint loots: {warm_cut}");
    (map, epoch, warm_cut)
}

/// Batch-builds the full serving bundle at the engine's current
/// reconciled cut, from scratch each time (no delta export, no graph
/// extension — deliberately *not* the pipeline's code path).
fn bundle_at_cut(
    pipe: &mut ShardedIngest,
    chain: &ResolvedChain,
    db: &TagDb,
    every: u64,
) -> Arc<ServeArtifacts> {
    let cut = pipe.reconciled_txs() as usize;
    let snapshot = pipe.export_snapshot(chain, db);
    let labels = pipe.change_labels().expect("soak always runs Heuristic 2").clone();
    let graph = TxGraph::build_at(chain, cut);
    let balances = balance_series_at(chain, cut, &snapshot, every);
    Arc::new(ServeArtifacts::new(snapshot, graph, labels, balances).expect("baseline pairs"))
}

/// The byte-exact payload a correct server must answer `request` with
/// when the pinned generation is `base` — mirrors the server's handlers
/// over the batch-built baseline.
fn expected_payload(base: &ServeArtifacts, request: &Request) -> Vec<u8> {
    let response = match request {
        Request::Ping => Response::Pong,
        Request::AddressInfo { address } => Response::AddressInfo(
            base.snapshot.cluster_of(*address).map(|cluster| AddressReport {
                address: *address,
                cluster,
                info: base.snapshot.info(cluster).expect("assigned cluster").clone(),
            }),
        ),
        Request::ClusterSummary { cluster } => Response::ClusterSummary(
            base.snapshot
                .info(*cluster)
                .map(|info| ClusterReport { cluster: *cluster, info: info.clone() }),
        ),
        Request::TaintTrace { loot, max_txs } => {
            let mut scratch = TaintScratch::for_graph(&base.graph);
            let trace = track_theft_indexed(
                &base.graph,
                loot,
                &base.labels,
                &base.snapshot,
                *max_txs as usize,
                &mut scratch,
            );
            Response::TaintTrace(TaintReport::from_trace(&trace))
        }
        Request::BalancePoint { height } => {
            Response::BalancePoint(point_at(&base.balances, *height).map(BalanceReport::from))
        }
        Request::Stats | Request::MetricsDump => {
            unreachable!("stats and metrics are counters, not differential material")
        }
    };
    response.encode_to_vec()
}

/// The per-round mixed request list client `t` replays each lap.
fn round_requests(t: u32, fx: &Fixture) -> Vec<Request> {
    let final_base = &fx.baselines[&fx.final_epoch];
    let n_addr = final_base.snapshot.address_count() as u32;
    let n_clusters = final_base.snapshot.cluster_count() as u32;
    let tip = final_base.snapshot.tip_height();
    let cut = fx.warm_cut as u32;

    let mut requests = Vec::new();
    for k in 0..6u32 {
        requests.push(Request::AddressInfo { address: (t * 131 + k * 37) % (n_addr + 3) });
    }
    for k in 0..4u32 {
        requests.push(Request::ClusterSummary { cluster: (t * 17 + k * 11) % (n_clusters + 2) });
    }
    for k in 0..4u64 {
        requests.push(Request::BalancePoint {
            height: (u64::from(t) * 13 + k * (tip / 4).max(1)) % (tip + 5),
        });
    }
    requests.push(Request::TaintTrace { loot: vec![(t % cut, 0)], max_txs: 64 });
    requests.push(Request::TaintTrace {
        loot: vec![((t * 5 + 1) % cut, 0), ((t * 5 + 4) % cut, 0)],
        max_txs: 48,
    });
    requests
}

/// One full round of mixed requests on an open connection, every answer
/// checked byte-for-byte against the baseline of the epoch the response
/// was stamped with, epochs checked nondecreasing along the connection.
fn round(
    client: &mut Client,
    t: u32,
    fx: &Fixture,
    prev_epoch: &mut u64,
    seen: &mut HashSet<u64>,
) {
    for request in &round_requests(t, fx) {
        let raw = client
            .call_raw(&request.encode_to_vec())
            .unwrap_or_else(|e| panic!("client {t}: {request:?} failed mid-soak: {e}"));
        let epoch = client.last_epoch();
        assert!(
            epoch >= *prev_epoch,
            "client {t}: response epoch regressed {} -> {epoch}",
            *prev_epoch
        );
        *prev_epoch = epoch;
        seen.insert(epoch);
        let base = fx
            .baselines
            .get(&epoch)
            .unwrap_or_else(|| panic!("client {t}: response stamped unknown epoch {epoch}"));
        assert_eq!(
            raw,
            expected_payload(base, request),
            "client {t}: answer diverged from the batch rebuild at epoch {epoch} for {request:?}"
        );
    }
    // Stats are not byte-comparable (live counters), but the epoch they
    // report must itself be a published generation.
    let stats = client.stats().unwrap_or_else(|e| panic!("client {t}: stats failed: {e}"));
    assert!(
        fx.baselines.contains_key(&stats.epoch),
        "client {t}: stats report unpublished epoch {}",
        stats.epoch
    );
}

/// Reads one v2 response frame from a raw soak connection, checking the
/// framing is intact (magic, version, exact lengths — a torn frame fails
/// here), and returns `(epoch, payload)`.
fn read_soak_frame(stream: &mut std::net::TcpStream, t: u32) -> (u64, Vec<u8>) {
    use std::io::Read;
    let mut header = [0u8; 9];
    stream.read_exact(&mut header).unwrap_or_else(|e| panic!("client {t}: torn header: {e}"));
    assert_eq!(header[..4], PROTOCOL_MAGIC, "client {t}: bad magic mid-soak");
    assert_eq!(header[4], PROTOCOL_VERSION, "client {t}: bad version mid-soak");
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    let mut epoch = [0u8; 8];
    stream.read_exact(&mut epoch).unwrap_or_else(|e| panic!("client {t}: torn epoch: {e}"));
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap_or_else(|e| panic!("client {t}: torn payload: {e}"));
    (u64::from_le_bytes(epoch), payload)
}

/// The event-loop variant of [`round`]: the whole request list goes out
/// as one coalesced pipelined blob, and the in-order responses are each
/// checked byte-for-byte against the baseline of the epoch they are
/// stamped with — a hot swap mid-batch is fine (epochs may step up
/// between responses) but must never regress or tear a frame.
fn pipelined_round(
    stream: &mut std::net::TcpStream,
    t: u32,
    fx: &Fixture,
    prev_epoch: &mut u64,
    seen: &mut HashSet<u64>,
) {
    use std::io::Write;
    let requests = round_requests(t, fx);
    let mut blob = Vec::new();
    for request in &requests {
        blob.extend_from_slice(&request.to_frame());
    }
    stream.write_all(&blob).unwrap_or_else(|e| panic!("client {t}: pipelined write: {e}"));
    for request in &requests {
        let (epoch, payload) = read_soak_frame(stream, t);
        assert!(
            epoch >= *prev_epoch,
            "client {t}: response epoch regressed {} -> {epoch}",
            *prev_epoch
        );
        *prev_epoch = epoch;
        seen.insert(epoch);
        let base = fx
            .baselines
            .get(&epoch)
            .unwrap_or_else(|| panic!("client {t}: response stamped unknown epoch {epoch}"));
        assert_eq!(
            payload,
            expected_payload(base, request),
            "client {t}: pipelined answer diverged at epoch {epoch} for {request:?}"
        );
    }
    // A stats probe rides the same connection; its epoch must be a
    // published generation.
    stream.write_all(&Request::Stats.to_frame()).unwrap_or_else(|e| panic!("client {t}: {e}"));
    let (epoch, payload) = read_soak_frame(stream, t);
    match Response::decode_payload(&payload) {
        Ok(Response::Stats(s)) => {
            assert!(
                fx.baselines.contains_key(&s.epoch),
                "client {t}: stats report unpublished epoch {}",
                s.epoch
            );
            assert!(fx.baselines.contains_key(&epoch));
        }
        other => panic!("client {t}: expected stats, got {other:?}"),
    }
}

/// Either serving loop, behind the handful of calls the soak needs —
/// both expose the same [`Publisher`], so the live pipeline cannot tell
/// them apart.
enum SoakServer {
    Threaded(Server),
    Event(EventServer),
}

impl SoakServer {
    fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            SoakServer::Threaded(s) => s.local_addr(),
            SoakServer::Event(s) => s.local_addr(),
        }
    }

    fn publisher(&self) -> Publisher {
        match self {
            SoakServer::Threaded(s) => s.publisher(),
            SoakServer::Event(s) => s.publisher(),
        }
    }

    fn stats(&self) -> ServerStats {
        match self {
            SoakServer::Threaded(s) => s.stats(),
            SoakServer::Event(s) => s.stats(),
        }
    }

    fn shutdown(self) {
        match self {
            SoakServer::Threaded(s) => s.shutdown(),
            SoakServer::Event(s) => s.shutdown(),
        }
    }
}

/// The soak itself: 8 clients hammer the server from before the first
/// streamed block until after the terminal flush, checking every answer
/// differentially; returns after asserting the end state.
fn soak(cache_entries: usize, store_dir: Option<&Path>, event_loop: bool) {
    let fx = fixture();
    let chain = Arc::new(fx.wb.eco.chain.resolved().clone());
    let mut config = fx.config.clone();
    config.store_dir = store_dir.map(Path::to_path_buf);
    let mut live = LivePipeline::new(Arc::clone(&chain), fx.wb.tagdb.clone(), config);
    let artifacts = live.bootstrap().expect("bootstrap");
    assert_eq!(
        artifacts.snapshot, fx.baselines[&0].snapshot,
        "bootstrap bundle diverges from the epoch-0 batch rebuild"
    );
    let server = if event_loop {
        SoakServer::Event(
            EventServer::start(
                EventServeConfig { workers: 8, cache_entries, ..EventServeConfig::default() },
                artifacts,
            )
            .expect("start event server"),
        )
    } else {
        SoakServer::Threaded(
            Server::start(
                ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers: 8,
                    cache_entries,
                    ..ServeConfig::default()
                },
                artifacts,
            )
            .expect("start server"),
        )
    };
    let addr = server.local_addr();

    let done = AtomicBool::new(false);
    let observed: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let start = Barrier::new(9);
    let report = std::thread::scope(|s| {
        for t in 0..8u32 {
            let (done, observed, start) = (&done, &observed, &start);
            s.spawn(move || {
                let mut prev_epoch = 0u64;
                let mut seen = HashSet::new();
                if event_loop {
                    // Pipelined raw connection against the event loop.
                    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    start.wait();
                    loop {
                        let finished = done.load(Ordering::SeqCst);
                        pipelined_round(&mut stream, t, fx, &mut prev_epoch, &mut seen);
                        if finished {
                            break;
                        }
                    }
                } else {
                    let mut client = Client::connect(addr).expect("connect");
                    client.ping().expect("ping");
                    start.wait();
                    loop {
                        // Snapshot the flag *before* the round so every
                        // client completes one full round on the final
                        // generation.
                        let finished = done.load(Ordering::SeqCst);
                        round(&mut client, t, fx, &mut prev_epoch, &mut seen);
                        if finished {
                            break;
                        }
                    }
                }
                observed.lock().unwrap().extend(seen);
            });
        }
        // All clients are connected and querying before the first streamed
        // block goes in.
        start.wait();
        let handle = live.spawn(server.publisher());
        let report = handle.join().expect("live run");
        done.store(true, Ordering::SeqCst);
        report
    });

    assert!(report.flushed, "soak must reach the terminal flush");
    assert_eq!(
        report.final_epoch, fx.final_epoch,
        "live publish sequence diverged from the batch replay"
    );
    let stats = server.stats();
    assert_eq!(stats.epoch, fx.final_epoch);
    assert_eq!(stats.swaps, report.publishes);
    assert_eq!(stats.tx_count, chain.tx_count() as u64);
    if cache_entries > 0 {
        assert!(stats.cache_hits > 0, "repeated rounds should hit the cache: {stats:?}");
    }
    let observed = observed.into_inner().unwrap();
    assert!(observed.contains(&fx.final_epoch), "no client saw the final generation");
    assert!(observed.len() >= 2, "soak finished without observing a swap: {observed:?}");
    server.shutdown();
}

#[test]
fn soak_with_cache_answers_byte_identically_across_hot_swaps() {
    soak(4096, None, false);
}

#[test]
fn soak_without_cache_answers_byte_identically_across_hot_swaps() {
    soak(0, None, false);
}

#[test]
fn event_soak_answers_pipelined_batches_byte_identically_across_hot_swaps() {
    // The event loop under continuous *pipelined* load while the live
    // pipeline hot-swaps generations underneath it: epochs monotone per
    // connection, every frame intact, every answer byte-identical to the
    // batch rebuild at its stamped epoch. Bounded exactly like the
    // threaded soaks — one pass of the streamed chain.
    soak(4096, None, true);
}

#[test]
fn soak_with_store_persists_and_a_restart_resumes_identically() {
    let dir = std::env::temp_dir()
        .join(format!("fistful-live-soak-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    soak(1024, Some(&dir), false);

    let fx = fixture();
    // The on-disk base + delta trail folds to the final published state.
    let disk = ServeArtifacts::open_dir(&dir).expect("reopen store");
    assert_eq!(disk.snapshot, fx.baselines[&fx.final_epoch].snapshot);
    let meta = read_live_meta(&dir).expect("meta readable").expect("live save carries meta");
    assert_eq!(meta.epoch, fx.final_epoch);
    assert!(meta.flushed);

    // A restarted pipeline resumes from disk at the recorded epoch and a
    // re-run republishes the same terminal state one epoch later (the
    // terminal flush is idempotent); answers over a fresh socket are
    // byte-identical to the final baseline.
    let chain = Arc::new(fx.wb.eco.chain.resolved().clone());
    let mut config = fx.config.clone();
    config.store_dir = Some(dir.clone());
    config.block_delay = std::time::Duration::ZERO;
    let mut resumed = LivePipeline::new(Arc::clone(&chain), fx.wb.tagdb.clone(), config);
    let restored = resumed.bootstrap().expect("resume bootstrap");
    assert_eq!(resumed.epoch(), fx.final_epoch, "resume must land on the recorded epoch");
    assert_eq!(restored.snapshot, fx.baselines[&fx.final_epoch].snapshot);

    let server = Server::start(
        ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 2, ..ServeConfig::default() },
        restored,
    )
    .expect("start restarted server");
    let addr = server.local_addr();
    let report = resumed.spawn(server.publisher()).join().expect("resumed run");
    assert_eq!(report.final_epoch, fx.final_epoch + 1);
    assert_eq!(server.stats().epoch, fx.final_epoch + 1);

    let final_base = &fx.baselines[&fx.final_epoch];
    let mut client = Client::connect(addr).expect("connect to restarted server");
    for request in [
        Request::AddressInfo { address: 3 },
        Request::ClusterSummary { cluster: 0 },
        Request::BalancePoint { height: final_base.snapshot.tip_height() },
        Request::TaintTrace { loot: vec![(2, 0)], max_txs: 32 },
    ] {
        let raw = client.call_raw(&request.encode_to_vec()).expect("answer after restart");
        assert_eq!(
            raw,
            expected_payload(final_base, &request),
            "restarted server diverged on {request:?}"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

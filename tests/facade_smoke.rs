//! Smoke tests for the `fistful` facade crate: every re-exported layer is
//! reachable through the facade paths, and a minimal end-to-end pipeline
//! (simulate → Heuristic-1 cluster → name) produces a non-empty clustering.

use fistful::core::cluster::Clusterer;
use fistful::core::naming::name_clusters;
use fistful::core::tagdb::{Tag, TagDb, TagSource};
use fistful::core::union_find::UnionFind;
use fistful::flow::{AddressDirectory, FollowStrategy};
use fistful::sim::{generate_tags, Economy, RawTagSource, SimConfig};

#[test]
fn crypto_layer_is_reachable() {
    let digest = fistful::crypto::sha256::sha256d(b"a fistful of bitcoins");
    assert_ne!(digest.0, [0u8; 32]);
    let kp = fistful::crypto::keys::KeyPair::from_seed(42);
    let sig = kp.sign(&digest);
    assert!(kp.public().verify(&digest, &sig));
}

#[test]
fn chain_layer_is_reachable() {
    let params = fistful::chain::params::Params::regtest();
    assert!(params.subsidy_at(0) > fistful::chain::amount::Amount::from_sat(0));
    let addr = fistful::chain::address::Address::from_seed(7);
    assert_eq!(addr, fistful::chain::address::Address::from_seed(7));
}

#[test]
fn net_layer_is_reachable() {
    let topo = fistful::net::Topology::random(10, 3, 1_000, 5_000, 1);
    assert_eq!(topo.peers.len(), 10);
}

#[test]
fn core_layer_is_reachable() {
    let mut uf = UnionFind::new(4);
    uf.union(0, 1);
    assert!(uf.same(0, 1));
    assert!(!uf.same(0, 2));
    assert_eq!(uf.component_count(), 3);
}

#[test]
fn flow_layer_is_reachable() {
    // The flow API is exercised end to end below; here just pin the
    // strategy enum the peeling traversal is parameterized by.
    let strategies = [FollowStrategy::Strict, FollowStrategy::LargestFallback];
    assert_eq!(strategies.len(), 2);
}

#[test]
fn minimal_pipeline_sim_h1_naming() {
    // Simulate a small economy...
    let eco = Economy::run(SimConfig::tiny());
    let chain = eco.chain.resolved();
    assert!(chain.tx_count() > 0, "economy produced transactions");

    // ...cluster it with Heuristic 1...
    let clustering = Clusterer::h1_only().run(chain);
    assert!(clustering.cluster_count() > 0, "non-empty clustering");
    assert_eq!(clustering.assignment.len(), chain.address_count());
    assert!(
        clustering.cluster_count() < chain.address_count(),
        "H1 merged at least one multi-input spend"
    );

    // ...and name the clusters from the simulator's tags.
    let mut db = TagDb::new();
    for raw in generate_tags(&eco) {
        let Some(address) = chain.address_id(&raw.address) else { continue };
        let source = match raw.source {
            RawTagSource::OwnTransaction => TagSource::OwnTransaction,
            RawTagSource::SelfSubmitted => TagSource::SelfSubmitted,
            RawTagSource::Forum => TagSource::Forum,
        };
        db.add(Tag { address, service: raw.service, category: raw.category, source });
    }
    assert!(!db.is_empty(), "simulator produced tags");
    let names = name_clusters(&clustering, &db);
    assert!(!names.names.is_empty(), "naming labelled at least one cluster");

    // The directory derived from naming resolves at least one address.
    let directory = AddressDirectory::from_naming(&clustering, &names);
    assert!(directory.resolved_count() > 0, "directory resolves addresses to services");
}

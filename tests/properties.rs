//! Property-based tests (proptest) over the core data structures and the
//! paper's invariants.

use fistful::chain::address::Address;
use fistful::chain::amount::Amount;
use fistful::chain::encode::{Decodable, Encodable};
use fistful::chain::merkle::{merkle_proof, merkle_root, verify_proof};
use fistful::chain::transaction::{OutPoint, Transaction, TxIn, TxOut};
use fistful::core::change::{self, ChangeConfig};
use fistful::core::cluster::Clusterer;
use fistful::core::metrics::score_clustering;
use fistful::core::union_find::UnionFind;
use fistful::crypto::base58;
use fistful::crypto::sha256::sha256d;
use fistful::crypto::u256::U256;
use fistful::sim::{Economy, SimConfig};
use proptest::prelude::*;

// ---------- crypto ----------

proptest! {
    #[test]
    fn base58_round_trips(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let encoded = base58::encode(&data);
        prop_assert_eq!(base58::decode(&encoded).unwrap(), data);
    }

    #[test]
    fn base58check_detects_any_version_payload(version in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let s = base58::check_encode(version, &payload);
        let (v, p) = base58::check_decode(&s).unwrap();
        prop_assert_eq!(v, version);
        prop_assert_eq!(p, payload);
    }

    #[test]
    fn u256_be_bytes_round_trip(bytes in any::<[u8; 32]>()) {
        let x = U256::from_be_bytes(&bytes);
        prop_assert_eq!(x.to_be_bytes(), bytes);
    }

    #[test]
    fn u256_add_sub_inverse(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let x = U256::from_be_bytes(&a);
        let y = U256::from_be_bytes(&b);
        let (sum, _) = x.overflowing_add(&y);
        let (back, _) = sum.overflowing_sub(&y);
        prop_assert_eq!(back, x);
    }

    #[test]
    fn field_mul_matches_generic_reduction(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        use fistful::crypto::field::{Fe, P};
        let x = Fe::from_be_bytes(&a);
        let y = Fe::from_be_bytes(&b);
        let fast = x.mul(&y);
        let slow = Fe::from_u256(x.to_u256().mul_wide(&y.to_u256()).rem(&P));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn scalar_mul_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        use fistful::crypto::scalar::Scalar;
        let x = Scalar::from_be_bytes(&a);
        let y = Scalar::from_be_bytes(&b);
        prop_assert_eq!(x.mul(&y), y.mul(&x));
    }
}

// ---------- chain encoding ----------

fn arb_txout() -> impl Strategy<Value = TxOut> {
    (any::<u64>(), any::<u64>()).prop_map(|(v, seed)| TxOut {
        value: Amount::from_sat(v % fistful::chain::amount::MAX_MONEY),
        address: Address::from_seed(seed),
    })
}

fn arb_txin() -> impl Strategy<Value = TxIn> {
    (any::<[u8; 32]>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..100)).prop_map(
        |(txid, vout, witness)| TxIn {
            prevout: OutPoint { txid: fistful::crypto::hash::Hash256(txid), vout },
            witness,
        },
    )
}

fn arb_tx() -> impl Strategy<Value = Transaction> {
    (
        proptest::collection::vec(arb_txin(), 1..8),
        proptest::collection::vec(arb_txout(), 1..8),
        any::<u32>(),
    )
        .prop_map(|(inputs, outputs, lock_time)| Transaction {
            version: 1,
            inputs,
            outputs,
            lock_time,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transaction_encoding_round_trips(tx in arb_tx()) {
        let bytes = tx.encode_to_vec();
        let decoded = Transaction::decode_all(&bytes).unwrap();
        prop_assert_eq!(&decoded, &tx);
        prop_assert_eq!(decoded.txid(), tx.txid());
    }

    #[test]
    fn txid_is_injective_on_distinct_txs(a in arb_tx(), b in arb_tx()) {
        if a != b {
            prop_assert_ne!(a.txid(), b.txid());
        }
    }

    #[test]
    fn merkle_proofs_verify(n in 1usize..24, tamper in any::<bool>()) {
        let txids: Vec<_> = (0..n as u64).map(|i| sha256d(&i.to_le_bytes())).collect();
        let root = merkle_root(&txids);
        for i in 0..n {
            let proof = merkle_proof(&txids, i).unwrap();
            prop_assert!(verify_proof(&txids[i], &proof, &root));
            if tamper {
                let wrong = sha256d(b"tampered");
                prop_assert!(!verify_proof(&wrong, &proof, &root));
            }
        }
    }
}

// ---------- union-find invariants ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_find_is_an_equivalence(
        n in 2usize..200,
        unions in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..400),
    ) {
        let mut uf = UnionFind::new(n);
        for (a, b) in unions {
            let a = a % n as u32;
            let b = b % n as u32;
            uf.union(a, b);
            // Reflexive + symmetric + the union took effect.
            prop_assert!(uf.same(a, a));
            prop_assert!(uf.same(a, b));
            prop_assert!(uf.same(b, a));
        }
        // Component count matches the number of distinct roots.
        let (assignment, sizes) = uf.assignments();
        prop_assert_eq!(sizes.iter().map(|&s| s as usize).sum::<usize>(), n);
        prop_assert_eq!(uf.component_count(), sizes.len());
        // Transitivity sample: same assignment label == same set.
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                prop_assert_eq!(
                    uf.same(x, y),
                    assignment[x as usize] == assignment[y as usize]
                );
            }
        }
    }
}

// ---------- H1 differential: batch vs parallel vs incremental ----------

/// Builds a pseudo-random chain: seed coinbases, then `txs` spends of
/// random unspent outputs paying a mix of fresh and reused addresses, with
/// transactions sometimes sharing a block.
fn random_chain(seed: u64, txs: usize) -> fistful::core::testutil::TestChain {
    use fistful::core::testutil::TestChain;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TestChain::new();
    // (tx handle, vout) of unspent outputs.
    let mut utxos: Vec<(usize, u32)> = Vec::new();
    let mut next_addr: u64 = 1;
    for _ in 0..6 {
        let h = t.coinbase(next_addr, 50);
        utxos.push((h, 0));
        next_addr += 1;
    }
    let mut last_height: u64 = 5;
    for i in 0..txs {
        if utxos.len() < 2 || rng.gen::<f64>() < 0.1 {
            let h = t.coinbase(next_addr, 50);
            utxos.push((h, 0));
            next_addr += 1;
            last_height = t.chain.txs[h].height;
            continue;
        }
        // Spend 1–3 distinct utxos.
        let k = 1 + rng.gen_range(0..3usize).min(utxos.len() - 1);
        let mut spends = Vec::with_capacity(k);
        for _ in 0..k {
            spends.push(utxos.swap_remove(rng.gen_range(0..utxos.len())));
        }
        // Pay 1–3 outputs to fresh or already-seen addresses.
        let n_out = 1 + rng.gen_range(0..3usize);
        let mut outs = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            let addr = if rng.gen::<f64>() < 0.5 && next_addr > 1 {
                rng.gen_range(1..next_addr)
            } else {
                next_addr += 1;
                next_addr - 1
            };
            outs.push((addr, 1));
        }
        // ~30% of spends share the previous transaction's block.
        let height = if i > 0 && rng.gen::<f64>() < 0.3 { Some(last_height) } else { None };
        let h = t.tx_at(&spends, &outs, height);
        last_height = t.chain.txs[h].height;
        for v in 0..outs.len() as u32 {
            utxos.push((h, v));
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch, parallel and incremental Heuristic 1 must produce identical
    /// partitions (and identical stats) on arbitrary chains.
    #[test]
    fn h1_batch_parallel_incremental_agree(seed in any::<u64>(), txs in 20usize..120) {
        use fistful::core::heuristic1;
        use fistful::core::incremental::IncrementalClusterer;
        use fistful::core::union_find::AtomicUnionFind;

        let t = random_chain(seed, txs);
        let chain = &t.chain;
        let n = chain.address_count();

        let mut batch_uf = UnionFind::new(n);
        let batch_stats = heuristic1::apply(chain, &mut batch_uf);
        let (batch_assign, _) = batch_uf.assignments();

        let par_uf = AtomicUnionFind::new(n);
        let par_stats = heuristic1::apply_parallel(chain, &par_uf, 4);
        prop_assert_eq!(par_stats, batch_stats);

        let mut inc = IncrementalClusterer::h1_only();
        for block in chain.blocks() {
            inc.ingest_block(&block);
        }
        prop_assert_eq!(inc.h1_stats(), batch_stats);
        let inc_snap = inc.snapshot();
        prop_assert_eq!(&inc_snap.assignment, &batch_assign);

        // The parallel partition, canonicalized by first member.
        let mut canon = std::collections::HashMap::new();
        for x in 0..n as u32 {
            let root = par_uf.find(x);
            let first = *canon.entry(root).or_insert(x);
            prop_assert!(
                batch_assign[first as usize] == batch_assign[x as usize],
                "parallel and batch disagree on element {}", x
            );
        }
        prop_assert_eq!(canon.len(), batch_uf.component_count());
    }
}

// ---------- sharded ingest differential: sharded vs batch vs incremental ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On arbitrary chains, the sharded ingest pipeline must land on
    /// exactly the batch partition and label set — and agree with the
    /// per-block incremental engine — for every shard count in {1,2,4,8}
    /// and epoch length in {1,4,16}, with and without Heuristic 2 and the
    /// wait-to-label window.
    #[test]
    fn sharded_ingest_matches_batch_and_incremental(
        seed in any::<u64>(),
        txs in 20usize..120,
        shards_idx in 0usize..4,
        epoch_idx in 0usize..3,
        mode in 0usize..3,
        window in 0u64..12,
    ) {
        use fistful::core::incremental::sharded::{IngestConfig, ShardedIngest};
        use fistful::core::incremental::IncrementalClusterer;

        let shards = [1usize, 2, 4, 8][shards_idx];
        let epoch = [1usize, 4, 16][epoch_idx];
        let h2 = match mode {
            0 => None,
            1 => Some(ChangeConfig::naive()),
            _ => {
                let mut cfg = ChangeConfig::naive();
                cfg.wait_blocks = Some(window);
                cfg.skip_reused_change = true;
                cfg.skip_prior_self_change = true;
                Some(cfg)
            }
        };

        let t = random_chain(seed, txs);
        let chain = &t.chain;
        let batch = match &h2 {
            Some(cfg) => Clusterer::with_h2(cfg.clone()).run(chain),
            None => Clusterer::h1_only().run(chain),
        };
        let mut inc = match &h2 {
            Some(cfg) => IncrementalClusterer::with_h2(cfg.clone()),
            None => IncrementalClusterer::h1_only(),
        };
        let mut sharded = ShardedIngest::new(IngestConfig {
            shards,
            epoch_blocks: epoch,
            h2,
        });
        for block in chain.blocks() {
            inc.ingest_block(&block);
            sharded.ingest_block(&block);
        }
        inc.flush(chain);
        sharded.flush(chain);
        prop_assert_eq!(sharded.pending_decisions(), 0);

        let inc_snap = inc.snapshot();
        let shard_snap = sharded.snapshot();
        prop_assert_eq!(&shard_snap.assignment, &batch.assignment);
        prop_assert_eq!(&shard_snap.sizes, &batch.sizes);
        prop_assert_eq!(&shard_snap.assignment, &inc_snap.assignment);
        match (&shard_snap.change_labels, &batch.change_labels) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.vout_of, &b.vout_of);
                prop_assert_eq!(a.labels, b.labels);
                prop_assert_eq!(a.skip_counts, b.skip_counts);
            }
            (None, None) => {
                // H1-only: merge accounting is order-independent, so even
                // the statistics must coincide.
                prop_assert_eq!(shard_snap.h1_stats, batch.h1_stats);
            }
            _ => prop_assert!(false, "H2 ran on one side only"),
        }
    }
}

// ---------- graph differential: indexed vs legacy traversals ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On arbitrary chains, the columnar graph index must reproduce the
    /// resolver exactly, and the indexed peel / taint walks must agree
    /// with the legacy per-hop paths hop-for-hop — peel chains, movement
    /// records, pattern strings, and the `max_txs` walk bound included.
    #[test]
    fn graph_traversals_match_legacy(
        seed in any::<u64>(),
        txs in 20usize..120,
        threads in 1usize..5,
        max_txs in 0usize..40,
        max_hops in 1usize..60,
    ) {
        use fistful::flow::graph::TxGraph;
        use fistful::flow::movement::{
            classify_movements, classify_movements_indexed, pattern_string,
        };
        use fistful::flow::peel::{follow_chain, follow_chain_indexed, FollowStrategy};

        let t = random_chain(seed, txs);
        let chain = &t.chain;
        let labels = change::identify(chain, &ChangeConfig::naive());
        let graph = TxGraph::build_with_threads(chain, threads);

        // Structure: the CSR arrays are a lossless view of the resolver,
        // regardless of how many threads built them.
        prop_assert_eq!(graph.tx_count(), chain.tx_count());
        prop_assert_eq!(graph.output_count(), chain.total_output_count());
        prop_assert_eq!(graph.input_count(), chain.total_input_count());
        for (tx_id, tx) in chain.txs.iter().enumerate() {
            for (v, o) in tx.outputs.iter().enumerate() {
                let flat = graph.flat(tx_id as u32, v as u32);
                prop_assert_eq!(graph.spender_of(flat), o.spent_by);
                prop_assert_eq!(graph.address_of(flat), o.address);
                prop_assert_eq!(graph.value_of(flat), o.value);
            }
        }

        // Peeling chains from a sample of starts, both strategies.
        for start in (0..chain.tx_count() as u32).step_by(5) {
            for strategy in [FollowStrategy::Strict, FollowStrategy::LargestFallback] {
                let legacy = follow_chain(chain, &labels, start, max_hops, strategy);
                let indexed = follow_chain_indexed(&graph, &labels, start, max_hops, strategy);
                prop_assert_eq!(legacy, indexed);
            }
        }

        // Taint walks from a seed-derived loot set (multi-source, so
        // frontiers can merge), under the given walk bound and a loose one.
        let mut loot = Vec::new();
        for (i, tx) in chain.txs.iter().enumerate() {
            if tx.outputs.is_empty() {
                continue;
            }
            if (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed) % 5 == 0 {
                loot.push((i as u32, (seed as usize % tx.outputs.len()) as u32));
            }
        }
        for bound in [max_txs, 10_000] {
            let legacy = classify_movements(chain, &loot, &labels, bound);
            let indexed = classify_movements_indexed(&graph, &loot, &labels, bound);
            prop_assert_eq!(pattern_string(&legacy), pattern_string(&indexed));
            prop_assert_eq!(legacy, indexed);
        }
    }
}

proptest! {
    // Economies are expensive; a handful of seeds suffices.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// On random simulated economies, the batch taint engine over the
    /// graph must agree with the legacy per-theft walk on every scripted
    /// theft — verdicts, patterns, exchange arrivals, dormant totals.
    #[test]
    fn graph_theft_tracking_matches_legacy_on_economies(seed in 0u64..1000) {
        use fistful::flow::graph::TxGraph;
        use fistful::flow::theft::{track_theft, track_thefts_batch};
        use fistful_bench::{theft_loots, Workbench};

        let mut cfg = SimConfig::tiny();
        cfg.seed = seed;
        cfg.blocks = 100;
        cfg.users = 25;
        let wb = Workbench::build(cfg);
        let chain = wb.eco.chain.resolved();
        let labels = change::identify(chain, &wb.refined_config());
        let snapshot = wb.snapshot();
        let graph = TxGraph::build(chain);
        prop_assert!(snapshot.pairs_with_chain(graph.address_count(), graph.tx_count() as u64));

        let loots: Vec<Vec<(u32, u32)>> = theft_loots(chain, &wb.eco.script_report.thefts)
            .into_iter()
            .map(|(_, loot)| loot)
            .collect();
        let legacy: Vec<_> = loots
            .iter()
            .map(|loot| track_theft(chain, loot, &labels, &snapshot, 5_000))
            .collect();
        for threads in [1usize, 3] {
            let batch = track_thefts_batch(&graph, &loots, &labels, &snapshot, 5_000, threads);
            prop_assert_eq!(&batch, &legacy);
        }
    }
}

// ---------- snapshot wire format ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode → decode of a snapshot built from an arbitrary chain, an
    /// arbitrary H2 configuration, and arbitrary tags is lossless, and any
    /// single-byte corruption of the frame is rejected with a typed error.
    #[test]
    fn snapshot_encoding_round_trips(
        seed in any::<u64>(),
        txs in 20usize..100,
        with_h2 in any::<bool>(),
        tags in proptest::collection::vec((any::<u32>(), 0usize..4), 0..12),
        flip in (any::<usize>(), 1u8..=255),
    ) {
        use fistful::core::cluster::Clusterer;
        use fistful::core::naming::name_clusters;
        use fistful::core::snapshot::ClusterSnapshot;
        use fistful::core::tagdb::{Tag, TagDb, TagSource};

        let t = random_chain(seed, txs);
        let chain = &t.chain;
        let clusterer = if with_h2 {
            Clusterer::with_h2(ChangeConfig::naive())
        } else {
            Clusterer::h1_only()
        };
        let clustering = clusterer.run(chain);

        // Arbitrary tags over the address space (some may repeat).
        const SERVICES: [(&str, &str); 4] = [
            ("Mt. Gox", "exchange"),
            ("Silk Road", "vendor"),
            ("Satoshi Dice", "gambling"),
            ("Instawallet", "wallet"),
        ];
        let mut db = TagDb::new();
        for (addr, which) in tags {
            let n = chain.address_count() as u32;
            if n == 0 { continue }
            let (service, category) = SERVICES[which % SERVICES.len()];
            db.add(Tag {
                address: addr % n,
                service: service.into(),
                category: category.into(),
                source: TagSource::OwnTransaction,
            });
        }
        let names = name_clusters(&clustering, &db);
        let snapshot = ClusterSnapshot::build(chain, &clustering, &names);

        // Canonical-decode round trip: lossless and byte-stable.
        let bytes = snapshot.to_bytes();
        let decoded = ClusterSnapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(decoded.to_bytes(), bytes.clone());

        // Any single-byte change anywhere in the frame must be rejected
        // (magic, version, length, payload, or checksum — all covered).
        let (pos, xor) = flip;
        let mut bad = bytes.clone();
        bad[pos % bytes.len()] ^= xor;
        prop_assert!(ClusterSnapshot::from_bytes(&bad).is_err());
    }
}

// ---------- delta snapshots ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Delta snapshots over arbitrary chains and arbitrary epoch cuts:
    /// exporting at random block boundaries, diffing consecutive exports,
    /// and folding base + deltas must land byte-for-byte on the final
    /// export — which itself must be byte-identical to the batch
    /// snapshot. Every delta must also survive its store-container round
    /// trip losslessly.
    #[test]
    fn snapshot_deltas_fold_byte_identically_over_random_epoch_cuts(
        seed in any::<u64>(),
        txs in 30usize..100,
        shards in 1usize..5,
        with_h2 in any::<bool>(),
        raw_cuts in proptest::collection::vec(any::<u32>(), 1..6),
    ) {
        use fistful::core::incremental::sharded::{IngestConfig, ShardedIngest};
        use fistful::core::naming::name_clusters;
        use fistful::core::snapshot::{ClusterSnapshot, SnapshotDelta};
        use fistful::core::tagdb::TagDb;
        use fistful::store::{Store, StoreWriter};

        let t = random_chain(seed, txs);
        let chain = &t.chain;
        let db = TagDb::new();
        let mut cuts: Vec<usize> =
            raw_cuts.iter().map(|&c| c as usize % chain.block_count()).collect();
        cuts.sort_unstable();
        cuts.dedup();

        // Reconcile after every block so any block index is an epoch cut.
        let config = if with_h2 {
            IngestConfig::with_h2(shards, 1, ChangeConfig::naive())
        } else {
            IngestConfig::h1_only(shards, 1)
        };
        let mut pipe = ShardedIngest::new(config);
        let mut exports: Vec<ClusterSnapshot> = Vec::new();
        for (i, block) in chain.blocks().enumerate() {
            pipe.ingest_block(&block);
            if cuts.binary_search(&i).is_ok() {
                exports.push(pipe.export_snapshot(chain, &db));
            }
        }
        pipe.flush(chain);
        exports.push(pipe.export_snapshot(chain, &db));

        // Diff consecutive exports; each delta survives its container
        // round trip; the fold lands on the final export byte-for-byte.
        let mut deltas = Vec::new();
        for pair in exports.windows(2) {
            let delta = SnapshotDelta::between(&pair[0], &pair[1]);
            let mut w = StoreWriter::new();
            delta.write_store(&mut w);
            let mut store = Store::open_bytes(w.to_bytes()).unwrap();
            let reread = SnapshotDelta::read_store(&mut store).unwrap();
            prop_assert_eq!(&reread, &delta);
            deltas.push(delta);
        }
        let folded = ClusterSnapshot::from_base_and_deltas(&exports[0], &deltas).unwrap();
        let last = exports.last().unwrap();
        prop_assert_eq!(folded.to_bytes(), last.to_bytes());

        // The final export is the batch snapshot, byte for byte.
        let clusterer = if with_h2 {
            Clusterer::with_h2(ChangeConfig::naive())
        } else {
            Clusterer::h1_only()
        };
        let clustering = clusterer.run(chain);
        let names = name_clusters(&clustering, &db);
        let batch = ClusterSnapshot::build(chain, &clustering, &names);
        prop_assert_eq!(last.to_bytes(), batch.to_bytes());
    }
}

// ---------- live hot-swap differential ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random economies × random epoch cuts × shard counts: streaming the
    /// chain through a live pipeline that publishes into a real server
    /// must land on exactly the batch `Clusterer::run` artifact
    /// byte-for-byte, and the on-disk base + per-epoch-delta trail must
    /// fold back to the final published snapshot.
    #[test]
    fn live_hot_swap_converges_to_batch_over_random_cuts(
        seed in any::<u64>(),
        txs in 20usize..100,
        shards in 1usize..5,
        epoch_blocks in 1usize..20,
        start_blocks in 0usize..30,
        window in 0u64..8,
        windowed in any::<bool>(),
    ) {
        use fistful::core::naming::name_clusters;
        use fistful::core::snapshot::ClusterSnapshot;
        use fistful::core::tagdb::TagDb;
        use fistful::flow::graph::TxGraph;
        use fistful::serve::store::read_live_meta;
        use fistful::serve::{LiveConfig, LivePipeline, ServeArtifacts, ServeConfig, Server};
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let change_cfg = if windowed {
            let mut cfg = ChangeConfig::naive();
            cfg.wait_blocks = Some(window);
            cfg.skip_reused_change = true;
            cfg.skip_prior_self_change = true;
            cfg
        } else {
            ChangeConfig::naive()
        };
        let t = random_chain(seed, txs);
        let chain = Arc::new(t.chain);
        let db = TagDb::new();

        let dir = std::env::temp_dir().join(format!("fistful-live-prop-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::create_dir_all(&dir).unwrap();

        let config = LiveConfig {
            shards,
            epoch_blocks,
            start_blocks,
            balance_every: 1,
            change: change_cfg.clone(),
            store_dir: Some(dir.clone()),
            block_delay: std::time::Duration::ZERO,
        };
        let mut live = LivePipeline::new(Arc::clone(&chain), db.clone(), config);
        let artifacts = live.bootstrap().unwrap();
        let server = Server::start(
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                cache_entries: 16,
                ..ServeConfig::default()
            },
            artifacts,
        )
        .unwrap();
        let report = live.run(&server.publisher(), &AtomicBool::new(false)).unwrap();
        prop_assert!(report.flushed);
        let stats = server.stats();
        prop_assert_eq!(stats.epoch, report.final_epoch);
        prop_assert_eq!(stats.tx_count, chain.tx_count() as u64);
        server.shutdown();

        // The on-disk base + delta fold is the final published bundle
        // (the serve file's watermark says so, and the fold reproduces
        // the snapshot it describes)...
        let disk = ServeArtifacts::open_dir(&dir).unwrap();
        let meta = read_live_meta(&dir).unwrap().expect("live save carries meta");
        prop_assert_eq!(meta.epoch, report.final_epoch);
        prop_assert!(meta.flushed);
        prop_assert_eq!(meta.tx_count, chain.tx_count() as u64);
        prop_assert_eq!(disk.snapshot.tip_height(), stats.tip_height);

        // ...and equals the batch artifact byte-for-byte: snapshot,
        // graph, and change labels alike.
        let clustering = Clusterer::with_h2(change_cfg.clone()).run(chain.as_ref());
        let names = name_clusters(&clustering, &db);
        let batch_snap = ClusterSnapshot::build(chain.as_ref(), &clustering, &names);
        prop_assert_eq!(disk.snapshot.to_bytes(), batch_snap.to_bytes());
        prop_assert_eq!(&disk.graph, &TxGraph::build(chain.as_ref()));
        let batch_labels = change::identify(chain.as_ref(), &change_cfg);
        prop_assert_eq!(&disk.labels.vout_of, &batch_labels.vout_of);
        prop_assert_eq!(disk.labels.labels, batch_labels.labels);
        prop_assert_eq!(disk.labels.skip_counts, batch_labels.skip_counts);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------- serve wire protocol ----------

/// Builds one of every [`Request`](fistful::serve::Request) variant from
/// drawn integers (the vendored proptest has no `prop_oneof`).
fn serve_request_from(
    sel: u8,
    a: u32,
    height: u64,
    loot: Vec<(u32, u32)>,
    max_txs: u32,
) -> fistful::serve::Request {
    use fistful::serve::Request;
    match sel % 6 {
        0 => Request::Ping,
        1 => Request::Stats,
        2 => Request::AddressInfo { address: a },
        3 => Request::ClusterSummary { cluster: a },
        4 => Request::TaintTrace { loot, max_txs },
        _ => Request::BalancePoint { height },
    }
}

/// Builds one of every [`Response`](fistful::serve::Response) variant
/// from drawn integers and strings.
fn serve_response_from(sel: u8, nums: &[u64], text: &str) -> fistful::serve::Response {
    use fistful::core::snapshot::ClusterInfo;
    use fistful::flow::movement::MovementKind;
    use fistful::serve::{
        AddressReport, BalanceReport, ClusterReport, ErrorCode, Response, ServerStats,
        TaintReport, WireError, WireMovement,
    };
    let n = |i: usize| nums[i % nums.len()];
    let info = ClusterInfo {
        size: n(0) as u32,
        received: Amount::from_sat(n(1)),
        spent: Amount::from_sat(n(2)),
        name: (n(3) % 2 == 0).then(|| text.to_string()),
        category: (n(4) % 3 == 0).then(|| format!("cat-{}", n(5) % 7)),
    };
    match sel % 9 {
        0 => Response::Pong,
        1 => Response::Stats(ServerStats {
            requests: n(0),
            cache_hits: n(1),
            cache_misses: n(2),
            workers: n(3) as u32,
            address_count: n(4),
            tx_count: n(5),
            cluster_count: n(6),
            tip_height: n(7),
            epoch: n(8),
            swaps: n(9),
            uptime_seconds: n(10),
            requests_total: n(11),
        }),
        2 => Response::AddressInfo(None),
        3 => Response::AddressInfo(Some(AddressReport {
            address: n(0) as u32,
            cluster: n(1) as u32,
            info,
        })),
        4 => Response::ClusterSummary(Some(ClusterReport { cluster: n(2) as u32, info })),
        5 => Response::TaintTrace(TaintReport {
            movements: (0..n(0) % 4)
                .map(|i| {
                    let i = i as usize;
                    WireMovement {
                        tx: n(i) as u32,
                        kind: match n(i + 1) % 5 {
                            0 => MovementKind::Aggregation,
                            1 => MovementKind::Peel,
                            2 => MovementKind::Split,
                            3 => MovementKind::Fold,
                            _ => MovementKind::Transfer,
                        },
                        tainted_inputs: n(i + 2) as u32,
                        total_inputs: n(i + 3) as u32,
                        departures: vec![(n(i + 4) as u32, Amount::from_sat(n(i + 5)))],
                    }
                })
                .collect(),
            pattern: text.chars().take(12).collect(),
            to_exchanges: Amount::from_sat(n(1)),
            exchanges_reached: n(2) as u32,
            dormant: Amount::from_sat(n(3)),
        }),
        6 => Response::BalancePoint(Some(BalanceReport {
            height: n(0),
            time: n(1),
            supply: Amount::from_sat(n(2)),
            sink_held: Amount::from_sat(n(3)),
            balances: (0..n(4) % 4)
                .map(|i| (format!("category-{i}"), Amount::from_sat(n(i as usize))))
                .collect(),
        })),
        7 => Response::BalancePoint(None),
        _ => Response::Error(WireError {
            code: match n(0) % 7 {
                0 => ErrorCode::BadMagic,
                1 => ErrorCode::UnsupportedVersion,
                2 => ErrorCode::FrameTooLarge,
                3 => ErrorCode::Malformed,
                4 => ErrorCode::UnknownRequest,
                5 => ErrorCode::InvalidRequest,
                _ => ErrorCode::Busy,
            },
            message: text.chars().take(40).collect(),
        }),
    }
}

proptest! {
    /// The wire decoders are total: arbitrary bytes produce a typed error
    /// or a value whose canonical re-encoding is exactly the input —
    /// never a panic, never an allocation blowup, never a non-canonical
    /// acceptance.
    #[test]
    fn serve_decoders_never_panic_on_arbitrary_frames(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        header in any::<[u8; 9]>(),
    ) {
        use fistful::serve::{Request, Response};
        if let Ok(request) = Request::decode_payload(&bytes) {
            prop_assert_eq!(request.encode_to_vec(), bytes.clone());
        }
        if let Ok(response) = Response::decode_payload(&bytes) {
            prop_assert_eq!(response.encode_to_vec(), bytes.clone());
        }
        // The frame-header check is total too, never admits a length
        // beyond the receiver's cap, and only ever accepts the two known
        // protocol versions.
        if let Ok(parsed) =
            fistful::serve::protocol::parse_frame_header(&header, fistful::serve::MAX_REQUEST_PAYLOAD)
        {
            prop_assert!(parsed.payload_len <= fistful::serve::MAX_REQUEST_PAYLOAD);
            prop_assert!(
                parsed.version == fistful::serve::PROTOCOL_VERSION_V1
                    || parsed.version == fistful::serve::PROTOCOL_VERSION
            );
        }
    }

    /// Encode → decode round-trips every request and response variant.
    #[test]
    fn serve_messages_round_trip(
        sel in any::<u8>(),
        a in any::<u32>(),
        height in any::<u64>(),
        loot in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..12),
        max_txs in any::<u32>(),
        nums in proptest::collection::vec(any::<u64>(), 8..16),
        text_seed in any::<u64>(),
    ) {
        use fistful::serve::{Request, Response};
        let text = format!("svc-{text_seed} ☃ \"quoted\"");
        let request = serve_request_from(sel, a, height, loot, max_txs);
        let payload = request.encode_to_vec();
        prop_assert_eq!(Request::decode_payload(&payload).unwrap(), request);

        let response = serve_response_from(sel, &nums, &text);
        let payload = response.encode_to_vec();
        prop_assert_eq!(Response::decode_payload(&payload).unwrap(), response);
    }
}

// ---------- differential pipelining: event loop vs threaded ----------

/// One threaded and one event server over the same artifacts, plus one
/// persistent connection to each. Both see the identical cumulative
/// request stream (batches arrive in proptest case order on a single
/// runner thread), and both run one worker, so even the `Stats` counters
/// stay in lockstep.
struct PipePair {
    _threaded: fistful::serve::Server,
    _event: fistful::serve::EventServer,
    threaded_conn: std::net::TcpStream,
    event_conn: std::net::TcpStream,
    loots: Vec<Vec<(u32, u32)>>,
    address_count: u32,
    cluster_count: u32,
    tip_height: u64,
}

fn pipe_pair() -> &'static std::sync::Mutex<PipePair> {
    use fistful::serve::{EventServeConfig, EventServer, ServeConfig, Server};
    use fistful_bench::{serve_artifacts, theft_loots, Workbench};
    use std::sync::{Arc, Mutex, OnceLock};
    static PAIR: OnceLock<Mutex<PipePair>> = OnceLock::new();
    PAIR.get_or_init(|| {
        let wb = Workbench::build(SimConfig::tiny());
        let artifacts = Arc::new(serve_artifacts(&wb));
        let chain = wb.eco.chain.resolved();
        let loots = theft_loots(chain, &wb.eco.script_report.thefts)
            .into_iter()
            .map(|(_, loot)| loot)
            .collect();
        let threaded = Server::start(
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                cache_entries: 1024,
                ..ServeConfig::default()
            },
            Arc::clone(&artifacts),
        )
        .expect("start threaded server");
        let event = EventServer::start(
            EventServeConfig { workers: 1, cache_entries: 1024, ..EventServeConfig::default() },
            Arc::clone(&artifacts),
        )
        .expect("start event server");
        let threaded_conn = std::net::TcpStream::connect(threaded.local_addr()).expect("connect");
        let event_conn = std::net::TcpStream::connect(event.local_addr()).expect("connect");
        threaded_conn.set_nodelay(true).expect("nodelay");
        event_conn.set_nodelay(true).expect("nodelay");
        Mutex::new(PipePair {
            address_count: artifacts.snapshot.address_count() as u32,
            cluster_count: artifacts.snapshot.cluster_count() as u32,
            tip_height: artifacts.snapshot.tip_height(),
            _threaded: threaded,
            _event: event,
            threaded_conn,
            event_conn,
            loots,
        })
    })
}

/// Reads one response frame in whichever protocol version the server
/// chose, returning `(version, epoch, payload)`.
fn read_frame_any(stream: &mut std::net::TcpStream) -> (u8, u64, Vec<u8>) {
    use fistful::serve::PROTOCOL_VERSION_V1;
    use std::io::Read;
    let mut header = [0u8; 9];
    stream.read_exact(&mut header).expect("response header");
    assert_eq!(header[..4], fistful::serve::PROTOCOL_MAGIC);
    let version = header[4];
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    let epoch = if version == PROTOCOL_VERSION_V1 {
        0
    } else {
        let mut e = [0u8; 8];
        stream.read_exact(&mut e).expect("response epoch");
        u64::from_le_bytes(e)
    };
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("response payload");
    (version, epoch, payload)
}

proptest! {
    // Each case round-trips a whole batch against two live servers.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pipelining is a pure transport optimization: a random batch of
    /// requests — mixed v1/v2 frames, coalesced into one byte blob and
    /// written over a single connection at arbitrary chunk boundaries —
    /// yields in-order responses byte-identical to the same requests sent
    /// one at a time to the threaded server.
    #[test]
    fn pipelined_batches_match_sequential_threaded_answers(
        draws in proptest::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u64>(), any::<bool>()),
            1..12,
        ),
        chunk_seed in any::<u64>(),
    ) {
        use fistful::serve::protocol::frame_v1;
        use fistful::serve::Request;
        use fistful_chain::encode::Encodable;
        use std::io::Write;

        let mut pair = pipe_pair().lock().expect("pair poisoned");
        // Only requests a server answers without closing: out-of-range
        // lookups get `None` bodies, but loot stays within the graph and
        // frames stay well-formed, so the two persistent connections
        // survive every case.
        let requests: Vec<(Request, bool)> = draws
            .iter()
            .map(|&(sel, a, height, v1)| {
                let request = match sel % 6 {
                    0 => Request::Ping,
                    1 => Request::Stats,
                    2 => Request::AddressInfo { address: a % (pair.address_count + 3) },
                    3 => Request::ClusterSummary { cluster: a % (pair.cluster_count + 3) },
                    4 => Request::TaintTrace {
                        loot: pair.loots[a as usize % pair.loots.len()].clone(),
                        max_txs: (height % 50 + 1) as u32,
                    },
                    _ => Request::BalancePoint { height: height % (pair.tip_height + 5) },
                };
                (request, v1)
            })
            .collect();

        // Sequential ground truth from the threaded server first, so the
        // cumulative streams (and thus Stats counters and cache state)
        // match request for request.
        let mut expected = Vec::with_capacity(requests.len());
        for (request, v1) in &requests {
            let bytes = if *v1 {
                frame_v1(&request.encode_to_vec())
            } else {
                request.to_frame()
            };
            pair.threaded_conn.write_all(&bytes).expect("threaded write");
            let conn = &mut pair.threaded_conn;
            expected.push(read_frame_any(conn));
        }

        // The same batch as one coalesced blob, chopped at arbitrary
        // boundaries (with pauses, so the server genuinely sees partial
        // frames), pipelined over the event connection.
        let mut blob = Vec::new();
        for (request, v1) in &requests {
            if *v1 {
                blob.extend_from_slice(&frame_v1(&request.encode_to_vec()));
            } else {
                blob.extend_from_slice(&request.to_frame());
            }
        }
        let mut lcg = chunk_seed | 1;
        let mut at = 0usize;
        let mut pauses = 0;
        while at < blob.len() {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let take = (1 + (lcg >> 33) as usize % 17).min(blob.len() - at);
            pair.event_conn.write_all(&blob[at..at + take]).expect("event write");
            at += take;
            if lcg % 5 == 0 && pauses < 3 && at < blob.len() {
                pauses += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        for (i, want) in expected.iter().enumerate() {
            let conn = &mut pair.event_conn;
            let got = read_frame_any(conn);
            assert_eq!(&got, want, "response #{} diverged (request {:?})", i, requests[i]);
        }
    }
}

// ---------- heuristic safety on simulated economies ----------

proptest! {
    // Economies are expensive; a handful of seeds suffices.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn h1_never_merges_owners_across_seeds(seed in 0u64..1000) {
        let mut cfg = SimConfig::tiny();
        cfg.seed = seed;
        cfg.blocks = 80;
        cfg.users = 25;
        let eco = Economy::run(cfg);
        let chain = eco.chain.resolved();
        let gt = eco.gt.to_id_space(chain);
        let clustering = Clusterer::h1_only().run(chain);
        let score = score_clustering(&clustering, &gt.owner_of);
        // Heuristic 1 is an inherent protocol property: always pure.
        prop_assert_eq!(score.impure_clusters, 0);
    }

    #[test]
    fn h2_conditions_hold_for_every_label(seed in 0u64..1000) {
        let mut cfg = SimConfig::tiny();
        cfg.seed = seed;
        cfg.blocks = 80;
        cfg.users = 25;
        let eco = Economy::run(cfg);
        let chain = eco.chain.resolved();
        let labels = change::identify(chain, &ChangeConfig::naive());
        for (t, vout, addr) in labels.iter(chain) {
            let tx = &chain.txs[t as usize];
            // Condition 2: never a coinbase.
            prop_assert!(!tx.is_coinbase);
            // Condition 1: first appearance is this transaction.
            prop_assert_eq!(chain.first_seen(addr), t);
            // Condition 3: not a self-change output.
            prop_assert!(tx.inputs.iter().all(|i| i.address != addr));
            // Condition 4: every other output appeared strictly earlier.
            for (v, o) in tx.outputs.iter().enumerate() {
                if v as u32 != vout {
                    prop_assert!(chain.first_seen(o.address) < t);
                }
            }
        }
    }

    #[test]
    fn supply_is_conserved_across_seeds(seed in 0u64..1000) {
        let mut cfg = SimConfig::tiny();
        cfg.seed = seed;
        cfg.blocks = 60;
        cfg.users = 20;
        let eco = Economy::run(cfg);
        let expected: Amount = (0..60u64)
            .map(|h| eco.chain.params().subsidy_at(h))
            .sum();
        prop_assert_eq!(eco.chain.utxos().total_value(), expected);
    }
}

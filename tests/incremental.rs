//! End-to-end equivalence: the incremental clustering engine, fed a
//! simulated economy block by block, must land on exactly the partition
//! (and Heuristic 2 label set) the batch `Clusterer` derives in one pass.

use fistful::core::change::{ChangeConfig, BLOCKS_PER_DAY};
use fistful::core::cluster::{Clusterer, Clustering};
use fistful::core::incremental::IncrementalClusterer;
use fistful::sim::{Economy, SimConfig};
use std::sync::OnceLock;

/// One default-scale economy shared by the equivalence tests.
fn economy() -> &'static Economy {
    static ECO: OnceLock<Economy> = OnceLock::new();
    ECO.get_or_init(|| Economy::run(SimConfig::default()))
}

/// Replays the whole chain block by block and snapshots the final state.
/// Also sanity-checks the cheap between-block queries along the way.
fn replay(chain: &fistful::chain::resolve::ResolvedChain, mut inc: IncrementalClusterer) -> (Clustering, usize) {
    let mut max_pending = 0;
    for block in chain.blocks() {
        inc.ingest_block(&block);
        max_pending = max_pending.max(inc.pending_decisions());
    }
    inc.flush(chain);
    assert_eq!(inc.pending_decisions(), 0, "flush resolves every pending decision");
    assert_eq!(inc.tx_count(), chain.tx_count());
    assert_eq!(inc.block_count(), chain.block_count());
    assert_eq!(inc.address_count(), chain.address_count());
    (inc.snapshot(), max_pending)
}

/// Full equivalence: same dense assignment (both sides label clusters by
/// first appearance, so equal partitions give equal vectors), same sizes,
/// same labels, same skip accounting.
fn assert_equivalent(inc: &Clustering, batch: &Clustering) {
    assert_eq!(inc.assignment, batch.assignment);
    assert_eq!(inc.sizes, batch.sizes);
    assert_eq!(inc.cluster_count(), batch.cluster_count());
    assert_eq!(inc.size_histogram(), batch.size_histogram());
    match (&inc.change_labels, &batch.change_labels) {
        (Some(a), Some(b)) => {
            assert_eq!(a.vout_of, b.vout_of);
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.skip_counts, b.skip_counts);
        }
        (None, None) => {}
        _ => panic!("H2 ran on one side only"),
    }
}

#[test]
fn incremental_matches_batch_h1_only() {
    let chain = economy().chain.resolved();
    let batch = Clusterer::h1_only().run(chain);
    let (inc, _) = replay(chain, IncrementalClusterer::h1_only());
    assert_equivalent(&inc, &batch);
    // In H1-only mode even the statistics coincide.
    assert_eq!(inc.h1_stats, batch.h1_stats);
    assert!(batch.cluster_count() > 100, "economy produced a real chain");
}

#[test]
fn incremental_matches_batch_with_h2() {
    let chain = economy().chain.resolved();
    let cfg = ChangeConfig::naive();
    let batch = Clusterer::with_h2(cfg.clone()).run(chain);
    let (inc, max_pending) = replay(chain, IncrementalClusterer::with_h2(cfg));
    assert_equivalent(&inc, &batch);
    assert!(batch.change_labels.as_ref().unwrap().labels > 100);
    // No wait window configured ⟹ nothing was ever parked.
    assert_eq!(max_pending, 0);
}

#[test]
fn incremental_matches_batch_with_wait_window() {
    let chain = economy().chain.resolved();
    // The refined-style configuration: wait window plus both exclusions,
    // so the pending-decision queue and every scanner refinement all see
    // real traffic.
    let mut cfg = ChangeConfig::naive();
    cfg.wait_blocks = Some(BLOCKS_PER_DAY);
    cfg.skip_reused_change = true;
    cfg.skip_prior_self_change = true;
    let batch = Clusterer::with_h2(cfg.clone()).run(chain);
    let (inc, max_pending) = replay(chain, IncrementalClusterer::with_h2(cfg));
    assert_equivalent(&inc, &batch);
    assert!(batch.change_labels.as_ref().unwrap().labels > 0);
    assert!(
        max_pending > 0,
        "a {BLOCKS_PER_DAY}-block wait must park decisions at the tip"
    );
}

#[test]
fn incremental_matches_batch_with_short_wait_window() {
    // A short window exercises mid-stream finalization (decisions both
    // enter and leave the queue while blocks are still arriving).
    let eco = Economy::run(SimConfig::tiny());
    let chain = eco.chain.resolved();
    for window in [0, 1, 5, 20] {
        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(window);
        let batch = Clusterer::with_h2(cfg.clone()).run(chain);
        let (inc, _) = replay(chain, IncrementalClusterer::with_h2(cfg));
        assert_equivalent(&inc, &batch);
    }
}

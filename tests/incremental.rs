//! End-to-end equivalence: the incremental clustering engine and the
//! sharded ingest pipeline, fed a simulated economy block by block, must
//! land on exactly the partition (and Heuristic 2 label set) the batch
//! `Clusterer` derives in one pass — the sharded one for every shard count
//! and epoch length.

use fistful::core::change::{ChangeConfig, BLOCKS_PER_DAY};
use fistful::core::cluster::{Clusterer, Clustering};
use fistful::core::incremental::sharded::{IngestConfig, ShardedIngest};
use fistful::core::incremental::IncrementalClusterer;
use fistful::sim::{Economy, SimConfig};
use std::sync::OnceLock;

/// One default-scale economy shared by the equivalence tests.
fn economy() -> &'static Economy {
    static ECO: OnceLock<Economy> = OnceLock::new();
    ECO.get_or_init(|| Economy::run(SimConfig::default()))
}

/// Replays the whole chain block by block and snapshots the final state.
/// Also sanity-checks the cheap between-block queries along the way.
fn replay(chain: &fistful::chain::resolve::ResolvedChain, mut inc: IncrementalClusterer) -> (Clustering, usize) {
    let mut max_pending = 0;
    for block in chain.blocks() {
        inc.ingest_block(&block);
        max_pending = max_pending.max(inc.pending_decisions());
    }
    inc.flush(chain);
    assert_eq!(inc.pending_decisions(), 0, "flush resolves every pending decision");
    assert_eq!(inc.tx_count(), chain.tx_count());
    assert_eq!(inc.block_count(), chain.block_count());
    assert_eq!(inc.address_count(), chain.address_count());
    (inc.snapshot(), max_pending)
}

/// Full equivalence: same dense assignment (both sides label clusters by
/// first appearance, so equal partitions give equal vectors), same sizes,
/// same labels, same skip accounting.
fn assert_equivalent(inc: &Clustering, batch: &Clustering) {
    assert_eq!(inc.assignment, batch.assignment);
    assert_eq!(inc.sizes, batch.sizes);
    assert_eq!(inc.cluster_count(), batch.cluster_count());
    assert_eq!(inc.size_histogram(), batch.size_histogram());
    match (&inc.change_labels, &batch.change_labels) {
        (Some(a), Some(b)) => {
            assert_eq!(a.vout_of, b.vout_of);
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.skip_counts, b.skip_counts);
        }
        (None, None) => {}
        _ => panic!("H2 ran on one side only"),
    }
}

#[test]
fn incremental_matches_batch_h1_only() {
    let chain = economy().chain.resolved();
    let batch = Clusterer::h1_only().run(chain);
    let (inc, _) = replay(chain, IncrementalClusterer::h1_only());
    assert_equivalent(&inc, &batch);
    // In H1-only mode even the statistics coincide.
    assert_eq!(inc.h1_stats, batch.h1_stats);
    assert!(batch.cluster_count() > 100, "economy produced a real chain");
}

#[test]
fn incremental_matches_batch_with_h2() {
    let chain = economy().chain.resolved();
    let cfg = ChangeConfig::naive();
    let batch = Clusterer::with_h2(cfg.clone()).run(chain);
    let (inc, max_pending) = replay(chain, IncrementalClusterer::with_h2(cfg));
    assert_equivalent(&inc, &batch);
    assert!(batch.change_labels.as_ref().unwrap().labels > 100);
    // No wait window configured ⟹ nothing was ever parked.
    assert_eq!(max_pending, 0);
}

#[test]
fn incremental_matches_batch_with_wait_window() {
    let chain = economy().chain.resolved();
    // The refined-style configuration: wait window plus both exclusions,
    // so the pending-decision queue and every scanner refinement all see
    // real traffic.
    let mut cfg = ChangeConfig::naive();
    cfg.wait_blocks = Some(BLOCKS_PER_DAY);
    cfg.skip_reused_change = true;
    cfg.skip_prior_self_change = true;
    let batch = Clusterer::with_h2(cfg.clone()).run(chain);
    let (inc, max_pending) = replay(chain, IncrementalClusterer::with_h2(cfg));
    assert_equivalent(&inc, &batch);
    assert!(batch.change_labels.as_ref().unwrap().labels > 0);
    assert!(
        max_pending > 0,
        "a {BLOCKS_PER_DAY}-block wait must park decisions at the tip"
    );
}

/// Replays the whole chain through the sharded pipeline and snapshots.
fn replay_sharded(
    chain: &fistful::chain::resolve::ResolvedChain,
    config: IngestConfig,
) -> Clustering {
    let mut ingest = ShardedIngest::new(config);
    for block in chain.blocks() {
        ingest.ingest_block(&block);
    }
    ingest.flush(chain);
    assert_eq!(ingest.pending_decisions(), 0, "flush resolves every pending decision");
    assert_eq!(ingest.tx_count(), chain.tx_count());
    assert_eq!(ingest.block_count(), chain.block_count());
    assert_eq!(ingest.address_count(), chain.address_count());
    ingest.snapshot()
}

#[test]
fn sharded_matches_batch_and_incremental_h1_only() {
    let chain = economy().chain.resolved();
    let batch = Clusterer::h1_only().run(chain);
    let (inc, _) = replay(chain, IncrementalClusterer::h1_only());
    for shards in [1, 2, 4, 8] {
        let sharded = replay_sharded(chain, IngestConfig::h1_only(shards, 4));
        assert_equivalent(&sharded, &batch);
        assert_equivalent(&sharded, &inc);
        // In H1-only mode even the statistics coincide: reconcile counts
        // exactly the merges that reduce the global component count.
        assert_eq!(sharded.h1_stats, batch.h1_stats, "{shards} shards");
    }
}

#[test]
fn sharded_matches_batch_with_wait_window_and_refinements() {
    let chain = economy().chain.resolved();
    let mut cfg = ChangeConfig::naive();
    cfg.wait_blocks = Some(BLOCKS_PER_DAY);
    cfg.skip_reused_change = true;
    cfg.skip_prior_self_change = true;
    let batch = Clusterer::with_h2(cfg.clone()).run(chain);
    for (shards, epoch) in [(4, 1), (4, 16), (8, 7)] {
        let sharded = replay_sharded(chain, IngestConfig::with_h2(shards, epoch, cfg.clone()));
        assert_equivalent(&sharded, &batch);
    }
    assert!(batch.change_labels.as_ref().unwrap().labels > 0);
}

#[test]
fn sharded_sweep_matches_batch_on_tiny_economy() {
    // The full sweep the tentpole promises: shards × epochs × H2 modes.
    let eco = Economy::run(SimConfig::tiny());
    let chain = eco.chain.resolved();
    let mut wait = ChangeConfig::naive();
    wait.wait_blocks = Some(5);
    let configs: [Option<ChangeConfig>; 3] =
        [None, Some(ChangeConfig::naive()), Some(wait)];
    for h2 in &configs {
        let batch = match h2 {
            Some(cfg) => Clusterer::with_h2(cfg.clone()).run(chain),
            None => Clusterer::h1_only().run(chain),
        };
        for shards in [1, 2, 4, 8] {
            for epoch in [1, 4, 16] {
                let config = IngestConfig { shards, epoch_blocks: epoch, h2: h2.clone() };
                let sharded = replay_sharded(chain, config);
                assert_equivalent(&sharded, &batch);
            }
        }
    }
}

#[test]
fn sharded_cluster_ids_are_shard_count_independent() {
    // Regression for the reconcile tie-break: lowest root wins, so the raw
    // representative of every cluster is its minimum address id no matter
    // how many shards produced the merges (and the dense snapshot ids are
    // identical too).
    let eco = Economy::run(SimConfig::tiny());
    let chain = eco.chain.resolved();
    let mut reference: Option<Vec<u32>> = None;
    for shards in [1, 2, 4, 8] {
        let mut ingest =
            ShardedIngest::new(IngestConfig::with_h2(shards, 3, ChangeConfig::naive()));
        for block in chain.blocks() {
            ingest.ingest_block(&block);
        }
        ingest.flush(chain);
        let reps: Vec<u32> =
            (0..chain.address_count() as u32).map(|a| ingest.cluster_of(a)).collect();
        for (a, &rep) in reps.iter().enumerate() {
            assert!(rep as usize <= a, "representative is the cluster minimum");
        }
        match &reference {
            Some(r) => assert_eq!(&reps, r, "{shards} shards diverged"),
            None => reference = Some(reps),
        }
    }
}

#[test]
fn incremental_matches_batch_with_short_wait_window() {
    // A short window exercises mid-stream finalization (decisions both
    // enter and leave the queue while blocks are still arriving).
    let eco = Economy::run(SimConfig::tiny());
    let chain = eco.chain.resolved();
    for window in [0, 1, 5, 20] {
        let mut cfg = ChangeConfig::naive();
        cfg.wait_blocks = Some(window);
        let batch = Clusterer::with_h2(cfg.clone()).run(chain);
        let (inc, _) = replay(chain, IncrementalClusterer::with_h2(cfg));
        assert_equivalent(&inc, &batch);
    }
}

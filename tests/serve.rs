//! Socket-level integration tests of the query service: answers over TCP
//! must be byte-identical to direct in-process `ClusterSnapshot` /
//! `TxGraph` calls under concurrent clients; malformed, oversized, and
//! wrong-version frames must each be answered with the right typed error
//! and a clean close; graceful shutdown must drain in-flight requests.

use fistful::core::change;
use fistful::flow::graph::TaintScratch;
use fistful::flow::theft::track_theft_indexed;
use fistful::flow::point_at;
use fistful::serve::protocol::{frame, FRAME_HEADER_LEN, MAX_REQUEST_PAYLOAD};
use fistful::serve::{
    AddressReport, BalanceReport, Client, ErrorCode, Request, Response, ServeArtifacts,
    ServeConfig, ServeError, Server, TaintReport, PROTOCOL_MAGIC, PROTOCOL_VERSION,
};
use fistful::sim::SimConfig;
use fistful_bench::{serve_artifacts, theft_loots, Workbench};
use fistful_chain::encode::Encodable;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

/// One tiny economy + serving artifacts, shared by every test (each test
/// starts its own server over them — servers are cheap, artifacts are
/// not).
fn fixtures() -> &'static (Workbench, Arc<ServeArtifacts>) {
    static FIX: OnceLock<(Workbench, Arc<ServeArtifacts>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::tiny());
        let artifacts = Arc::new(serve_artifacts(&wb));
        (wb, artifacts)
    })
}

fn start_server(workers: usize, cache_entries: usize) -> Server {
    let (_, artifacts) = fixtures();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_entries,
        ..ServeConfig::default()
    };
    Server::start(config, Arc::clone(artifacts)).expect("start server")
}

#[test]
fn socket_answers_match_direct_calls_under_concurrent_clients() {
    let (wb, artifacts) = fixtures();
    let chain = wb.eco.chain.resolved();
    let labels = change::identify(chain, &wb.refined_config());
    let loots: Vec<Vec<(u32, u32)>> = theft_loots(chain, &wb.eco.script_report.thefts)
        .into_iter()
        .map(|(_, loot)| loot)
        .collect();
    assert!(loots.len() >= 3, "tiny scale scripts several thefts");
    let server = start_server(4, 4096);
    let addr = server.local_addr();
    let n_addr = artifacts.snapshot.address_count() as u32;
    let tip = artifacts.snapshot.tip_height();

    // Eight concurrent clients, each comparing every answer to the direct
    // in-process call on its own slice of the query space.
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let loots = &loots;
            let labels = &labels;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.ping().expect("ping");

                // Address lookups (including one past the end).
                for a in (t..n_addr + t + 1).step_by(7) {
                    let got = client.address_info(a).expect("address_info");
                    let want = artifacts.snapshot.cluster_of(a).map(|cluster| AddressReport {
                        address: a,
                        cluster,
                        info: artifacts.snapshot.info(cluster).unwrap().clone(),
                    });
                    assert_eq!(got, want, "address {a}");
                }

                // Cluster lookups (including one past the end).
                let n_clusters = artifacts.snapshot.cluster_count() as u32;
                for c in (t..n_clusters + t + 1).step_by(5) {
                    let got = client.cluster_summary(c).expect("cluster_summary");
                    assert_eq!(
                        got.map(|r| r.info),
                        artifacts.snapshot.info(c).cloned(),
                        "cluster {c}"
                    );
                }

                // Balance samples across the whole height range, plus one
                // before the first sample.
                for height in (0..=tip + 10).step_by((tip as usize / 8).max(1)) {
                    let got = client.balance_point(height).expect("balance_point");
                    let want = point_at(&artifacts.balances, height).map(BalanceReport::from);
                    assert_eq!(got, want, "height {height}");
                }

                // Taint walks: every scripted theft, two walk bounds, each
                // compared to the direct indexed walk.
                let mut scratch = TaintScratch::for_graph(&artifacts.graph);
                for loot in loots.iter() {
                    for max_txs in [5u32, 5_000] {
                        let got = client.taint_trace(loot, max_txs).expect("taint_trace");
                        let direct = track_theft_indexed(
                            &artifacts.graph,
                            loot,
                            labels,
                            &artifacts.snapshot,
                            max_txs as usize,
                            &mut scratch,
                        );
                        let want = TaintReport::from_trace(&direct);
                        assert_eq!(got, want, "loot {loot:?} max_txs {max_txs}");
                        // Byte-identical, not merely equal after decoding:
                        // the raw response payload is exactly the direct
                        // trace's canonical encoding.
                        let raw = client
                            .call_raw(&Request::TaintTrace { loot: loot.clone(), max_txs }.encode_to_vec())
                            .expect("raw round trip");
                        assert_eq!(raw, Response::TaintTrace(want).encode_to_vec());
                    }
                }
            });
        }
    });

    let stats = server.stats();
    assert!(stats.requests > 0);
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.address_count, artifacts.snapshot.address_count() as u64);
    server.shutdown();
}

/// Reads one response frame from a raw socket; returns the payload, or
/// `None` on clean EOF.
fn read_raw_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0;
    while filled < FRAME_HEADER_LEN {
        match stream.read(&mut header[filled..]).expect("read header") {
            0 if filled == 0 => return None,
            0 => panic!("connection closed mid-frame"),
            n => filled += n,
        }
    }
    assert_eq!(header[..4], PROTOCOL_MAGIC);
    assert_eq!(header[4], PROTOCOL_VERSION);
    let len = u32::from_le_bytes(header[5..].try_into().unwrap()) as usize;
    // Version-2 frames carry the artifact epoch between header and
    // payload.
    let mut epoch = [0u8; 8];
    stream.read_exact(&mut epoch).expect("read epoch");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("read payload");
    Some(payload)
}

/// Sends raw bytes and expects an error response with `code`, then EOF.
fn expect_error_then_close(addr: std::net::SocketAddr, bytes: &[u8], code: ErrorCode) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write");
    let payload = read_raw_frame(&mut stream).expect("an error response before close");
    match Response::decode_payload(&payload) {
        Ok(Response::Error(e)) => assert_eq!(e.code, code, "message: {}", e.message),
        other => panic!("expected an error response, got {other:?}"),
    }
    // The server closes after a protocol error: next read is clean EOF.
    assert!(read_raw_frame(&mut stream).is_none(), "connection should be closed");
}

#[test]
fn malformed_oversized_and_wrong_version_frames_close_cleanly() {
    let server = start_server(2, 0);
    let addr = server.local_addr();

    // Wrong magic.
    let mut bad_magic = Request::Ping.to_frame();
    bad_magic[0] = b'X';
    expect_error_then_close(addr, &bad_magic, ErrorCode::BadMagic);

    // Wrong version.
    let mut bad_version = Request::Ping.to_frame();
    bad_version[4] = PROTOCOL_VERSION + 1;
    expect_error_then_close(addr, &bad_version, ErrorCode::UnsupportedVersion);

    // Oversized: the declared length alone must be rejected, before any
    // payload is sent (or allocated server-side).
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&PROTOCOL_MAGIC);
    oversized.push(PROTOCOL_VERSION);
    oversized.extend_from_slice(&(MAX_REQUEST_PAYLOAD + 1).to_le_bytes());
    expect_error_then_close(addr, &oversized, ErrorCode::FrameTooLarge);

    // Malformed payload: valid frame, garbage body.
    expect_error_then_close(addr, &frame(&[0x07, 0x01, 0x02]), ErrorCode::UnknownRequest);
    expect_error_then_close(addr, &frame(&[]), ErrorCode::Malformed);
    // Structurally valid but semantically impossible: loot beyond the
    // graph.
    let bad_loot = Request::TaintTrace { loot: vec![(u32::MAX - 1, 0)], max_txs: 10 };
    expect_error_then_close(addr, &bad_loot.to_frame(), ErrorCode::InvalidRequest);

    // The server survives all of that and still answers a healthy client.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping after bad peers");
    server.shutdown();
}

#[test]
fn remote_errors_surface_through_the_client() {
    let server = start_server(1, 0);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let err = client.taint_trace(&[(u32::MAX - 1, 0)], 10).unwrap_err();
    match err {
        ServeError::Remote(e) => assert_eq!(e.code, ErrorCode::InvalidRequest),
        other => panic!("expected a remote error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn response_cache_serves_repeated_keys_identically() {
    let (_, artifacts) = fixtures();
    let server = start_server(2, 1024);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let probe = (artifacts.snapshot.address_count() / 2) as u32;
    let first = client.address_info(probe).expect("first lookup");
    for _ in 0..20 {
        assert_eq!(client.address_info(probe).expect("repeat lookup"), first);
    }
    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits >= 20, "repeated key should hit: {stats:?}");
    assert!(stats.cache_misses >= 1);
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests_and_stops_accepting() {
    let (_, artifacts) = fixtures();
    let server = start_server(2, 0);
    let addr = server.local_addr();

    // A client with traffic in flight while shutdown lands: every response
    // that arrives must be complete and correct — no torn frames.
    let probe = (artifacts.snapshot.address_count() / 3) as u32;
    let mut client = Client::connect(addr).expect("connect");
    let expected = client.address_info(probe).expect("lookup before shutdown");

    let stopper = std::thread::spawn(move || {
        // Let the client get back into its request loop first.
        std::thread::sleep(std::time::Duration::from_millis(5));
        server.shutdown();
    });
    let mut served = 0usize;
    loop {
        match client.address_info(probe) {
            Ok(got) => {
                assert_eq!(got, expected, "drained response must be intact");
                served += 1;
            }
            // Once the worker notices shutdown between requests, the
            // connection closes at a frame boundary.
            Err(ServeError::Closed | ServeError::Io(_)) => break,
            Err(other) => panic!("unexpected failure during shutdown: {other}"),
        }
        if served > 200_000 {
            panic!("server never shut down");
        }
    }

    // shutdown() returned only after every thread joined.
    stopper.join().expect("shutdown completed");
    // And the listener is gone: new connections are refused (or reset
    // immediately, on platforms that accept-then-close).
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err(), "server should no longer answer"),
    }
}

#[test]
fn shutdown_is_not_hostage_to_a_stalled_partial_frame() {
    // A peer that sends half a frame and then goes silent must not pin a
    // worker: shutdown abandons the stalled read and completes promptly.
    let server = start_server(1, 0); // one worker — the stall would block everyone
    let addr = server.local_addr();
    let mut staller = TcpStream::connect(addr).expect("connect");
    staller.write_all(&PROTOCOL_MAGIC[..3]).expect("partial header");
    // Give the single worker time to pick the connection up and block on
    // the incomplete frame.
    std::thread::sleep(std::time::Duration::from_millis(60));

    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?} with a stalled peer",
        t0.elapsed()
    );
    drop(staller);
}

#[test]
fn sharded_ingest_feeds_the_server_byte_identically() {
    // The sharded pipeline must be a drop-in producer for the serving
    // layer: replaying the same chain through `ShardedIngest` with the
    // refined H2 configuration yields a `ClusterSnapshot` whose encoding
    // is byte-identical to the batch-built one the fixtures serve, and
    // the full artifact bundle passes the serving layer's pairing checks.
    use fistful::core::naming::name_clusters;
    use fistful::core::snapshot::ClusterSnapshot;
    use fistful::core::{IngestConfig, ShardedIngest};

    let (wb, artifacts) = fixtures();
    let chain = wb.eco.chain.resolved();
    let mut ingest = ShardedIngest::new(IngestConfig::with_h2(4, 8, wb.refined_config()));
    for block in chain.blocks() {
        ingest.ingest_block(&block);
    }
    ingest.flush(chain);
    let clustering = ingest.snapshot();

    let names = name_clusters(&clustering, &wb.tagdb);
    let snapshot = ClusterSnapshot::build(chain, &clustering, &names);
    assert!(snapshot.pairs_with_chain(chain.address_count(), chain.tx_count() as u64));
    assert_eq!(
        snapshot.to_bytes(),
        artifacts.snapshot.to_bytes(),
        "sharded snapshot encodes byte-identically to the batch one"
    );

    // The bundle is accepted end to end and answers like the fixture.
    let graph = fistful::flow::graph::TxGraph::build(chain);
    let labels = clustering.change_labels.clone().expect("refined config labels");
    let bundle =
        ServeArtifacts::new(snapshot, graph, labels, artifacts.balances.clone())
            .expect("sharded artifacts pair cleanly");
    let server = Server::start(
        ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() },
        Arc::new(bundle),
    )
    .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let got = client.address_info(0).expect("address_info");
    let want = artifacts.snapshot.cluster_of(0).map(|cluster| AddressReport {
        address: 0,
        cluster,
        info: artifacts.snapshot.info(cluster).unwrap().clone(),
    });
    assert_eq!(got, want, "served answer matches the batch-built fixture");
    server.shutdown();
}

#[test]
fn artifact_mismatches_are_rejected_before_serving() {
    let (wb, artifacts) = fixtures();
    let chain = wb.eco.chain.resolved();
    // A graph from a *different* economy must not pair with the snapshot.
    let mut other_cfg = SimConfig::tiny();
    other_cfg.blocks = 60;
    other_cfg.users = 10;
    let other = Workbench::build(other_cfg);
    let other_graph = fistful::flow::graph::TxGraph::build(other.eco.chain.resolved());
    let labels = change::identify(chain, &wb.refined_config());
    let err = ServeArtifacts::new(
        artifacts.snapshot.clone(),
        other_graph,
        labels,
        artifacts.balances.clone(),
    )
    .err()
    .expect("mismatched graph rejected");
    assert!(matches!(err, ServeError::MismatchedArtifacts(_)), "{err}");
}

//! Integration tests of the observability layer: the binary
//! `MetricsDump` scrape and the HTTP `/metrics` exposition must report
//! the identical counter values (both render the same registry snapshot
//! through `Core::metrics_dump`), the per-type counters must agree with
//! the requests a client actually issued — on both serve engines — and
//! the v2 `Stats` tail (`uptime_seconds`, `requests_total`) must move
//! with traffic.

use fistful::serve::httpexpo::MetricsExporter;
use fistful::serve::{
    render_prometheus, Client, EventServeConfig, EventServer, MetricsDump, MetricsHandle, Request,
    ServeArtifacts, ServeConfig, Server,
};
use fistful::sim::SimConfig;
use fistful_bench::{serve_artifacts, Workbench};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};

fn fixtures() -> &'static Arc<ServeArtifacts> {
    static FIX: OnceLock<Arc<ServeArtifacts>> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::tiny());
        Arc::new(serve_artifacts(&wb))
    })
}

/// One scrape over a raw HTTP/1.1 socket; returns the response body.
fn http_scrape(addr: SocketAddr) -> String {
    let mut sock = TcpStream::connect(addr).expect("connect to exporter");
    sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n").expect("send scrape");
    let mut response = String::new();
    sock.read_to_string(&mut response).expect("read scrape");
    let (head, body) = response.split_once("\r\n\r\n").expect("http head/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    body.to_string()
}

/// Issues a fixed request mix, then asserts that a binary dump taken
/// right afterwards and an HTTP scrape taken right after *that* agree on
/// every counter series. Counters may only move when a binary request is
/// dispatched, and the HTTP path never goes through request dispatch, so
/// the two exposures must be value-identical — gauges (inflight, uptime)
/// and the metrics-request latency histogram legitimately differ between
/// the two instants, which is why only counters are compared.
fn assert_binary_and_http_agree(binary_addr: SocketAddr, handle: MetricsHandle) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind exporter");
    let exporter = MetricsExporter::start_with_listener(listener, handle).expect("start exporter");

    let mut client = Client::connect(binary_addr).expect("connect");
    for _ in 0..5 {
        client.ping().expect("ping");
    }
    for address in 0..3 {
        client.address_info(address).expect("addr");
    }
    client.cluster_summary(0).expect("cluster");
    client.balance_point(1).expect("balance");
    let dump = client.metrics_dump().expect("binary dump");
    let body = http_scrape(exporter.local_addr());

    // The issued mix is visible, with exact counts (the dump request
    // itself lands under type="metrics", not under the query types).
    assert_eq!(dump.counter("fistful_requests_total{type=\"ping\"}"), Some(5));
    assert_eq!(dump.counter("fistful_requests_total{type=\"addr\"}"), Some(3));
    assert_eq!(dump.counter("fistful_requests_total{type=\"cluster\"}"), Some(1));
    assert_eq!(dump.counter("fistful_requests_total{type=\"balance\"}"), Some(1));
    assert_eq!(dump.counter("fistful_requests_total{type=\"metrics\"}"), Some(1));

    // Every counter series the binary dump reports appears in the HTTP
    // exposition with the identical value.
    assert!(!dump.counters.is_empty());
    for (series, value) in &dump.counters {
        let line = format!("{series} {value}");
        assert!(
            body.lines().any(|l| l == line),
            "HTTP scrape is missing or disagrees on `{line}`:\n{body}"
        );
    }

    // And the exposition is exactly what the local renderer produces for
    // those counters — the HTTP body is render_prometheus of a snapshot
    // whose counter section matches the binary dump's.
    let local = render_prometheus(&dump);
    for line in local.lines().filter(|l| l.starts_with("fistful_requests_total")) {
        assert!(body.contains(line), "missing `{line}` in HTTP scrape:\n{body}");
    }

    exporter.shutdown();
}

#[test]
fn threaded_engine_binary_dump_matches_http_scrape() {
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 2, ..ServeConfig::default() };
    let server = Server::start(config, Arc::clone(fixtures())).expect("start server");
    assert_binary_and_http_agree(server.local_addr(), server.metrics_handle());
    server.shutdown();
}

#[test]
fn event_engine_binary_dump_matches_http_scrape() {
    let config = EventServeConfig { workers: 2, ..EventServeConfig::default() };
    let server = EventServer::start(config, Arc::clone(fixtures())).expect("start event server");
    assert_binary_and_http_agree(server.local_addr(), server.metrics_handle());
    server.shutdown();
}

#[test]
fn latency_histograms_fill_in_for_the_issued_mix() {
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 1, ..ServeConfig::default() };
    let server = Server::start(config, Arc::clone(fixtures())).expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for _ in 0..4 {
        client.ping().expect("ping");
    }
    client.address_info(1).expect("addr");
    let dump = client.metrics_dump().expect("dump");

    let ping = dump
        .histograms
        .iter()
        .find(|h| h.name == "fistful_request_latency_seconds{type=\"ping\"}")
        .expect("ping latency histogram");
    assert_eq!(ping.count, 4);
    assert_eq!(ping.buckets.iter().sum::<u64>(), 4, "observations land in buckets");
    assert!(ping.sum_micros > 0, "a socket round trip takes measurable time");

    // Kinds that never ran stay empty rather than disappearing: the
    // exposition's series set is stable across scrapes.
    let taint = dump
        .histograms
        .iter()
        .find(|h| h.name == "fistful_request_latency_seconds{type=\"taint\"}")
        .expect("taint latency histogram");
    assert_eq!(taint.count, 0);
    server.shutdown();
}

#[test]
fn stats_reports_uptime_and_requests_total() {
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 1, ..ServeConfig::default() };
    let server = Server::start(config, Arc::clone(fixtures())).expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let first = client.stats().expect("stats");
    // The Stats request itself is counted at dispatch entry, so the very
    // first reading already shows it.
    assert_eq!(first.requests_total, 1);
    for _ in 0..6 {
        client.ping().expect("ping");
    }
    let second = client.stats().expect("stats");
    assert_eq!(second.requests_total, first.requests_total + 7, "6 pings + this Stats");
    assert!(second.uptime_seconds >= first.uptime_seconds);

    // The same totals flow into the scrape's counter sum.
    let dump = client.metrics_dump().expect("dump");
    let scraped: u64 = dump
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("fistful_requests_total{"))
        .map(|&(_, v)| v)
        .sum();
    assert_eq!(scraped, second.requests_total + 1, "+1 for the dump request itself");
    server.shutdown();
}

#[test]
fn metrics_dump_is_never_cached() {
    // With the response cache on, two dumps over the same connection must
    // differ (the counters moved between them) — a cached byte-identical
    // replay would be stale on arrival.
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 1, ..ServeConfig::default() };
    let server = Server::start(config, Arc::clone(fixtures())).expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let first: MetricsDump = client.metrics_dump().expect("first dump");
    let second = client.metrics_dump().expect("second dump");
    assert_eq!(first.counter("fistful_requests_total{type=\"metrics\"}"), Some(1));
    assert_eq!(second.counter("fistful_requests_total{type=\"metrics\"}"), Some(2));
    assert_ne!(first, second);
    server.shutdown();
}

#[test]
fn cache_counters_split_by_shard_and_sum_to_stats() {
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 1, ..ServeConfig::default() };
    let server = Server::start(config, Arc::clone(fixtures())).expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Same cacheable key twice: one miss, then one hit, somewhere in the
    // shard space.
    for _ in 0..2 {
        client.call(&Request::AddressInfo { address: 1 }).expect("addr");
    }
    let stats = client.stats().expect("stats");
    let dump = client.metrics_dump().expect("dump");
    let sum = |prefix: &str| -> u64 {
        dump.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|&(_, v)| v)
            .sum()
    };
    assert!(stats.cache_hits >= 1);
    assert_eq!(sum("fistful_cache_hits_total{"), stats.cache_hits);
    assert_eq!(sum("fistful_cache_misses_total{"), stats.cache_misses);
    server.shutdown();
}

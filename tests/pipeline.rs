//! End-to-end integration: economy → clustering → tagging → naming →
//! ground-truth scoring. This is the paper's whole §3–§4 pipeline.

use fistful::core::change::{ChangeConfig, BLOCKS_PER_DAY, BLOCKS_PER_WEEK};
use fistful::core::cluster::Clusterer;
use fistful::core::metrics::{score_change_labels, score_clustering};
use fistful::core::naming::name_clusters;
use fistful::core::tagdb::{Tag, TagDb, TagSource};
use fistful::core::{change, fp};
use fistful::sim::{generate_tags, Economy, RawTagSource, SimConfig};
use std::collections::HashSet;

fn tagdb_from(eco: &Economy) -> TagDb {
    let chain = eco.chain.resolved();
    let mut db = TagDb::new();
    for raw in generate_tags(eco) {
        let Some(address) = chain.address_id(&raw.address) else { continue };
        let source = match raw.source {
            RawTagSource::OwnTransaction => TagSource::OwnTransaction,
            RawTagSource::SelfSubmitted => TagSource::SelfSubmitted,
            RawTagSource::Forum => TagSource::Forum,
        };
        db.add(Tag { address, service: raw.service, category: raw.category, source });
    }
    db
}

/// Dice addresses via H1 clusters named as gambling — the paper's route.
fn dice_addresses(eco: &Economy) -> HashSet<u32> {
    let chain = eco.chain.resolved();
    let clustering = Clusterer::h1_only().run(chain);
    let db = tagdb_from(eco);
    let names = name_clusters(&clustering, &db);
    let mut dice = HashSet::new();
    for (addr, &cluster) in clustering.assignment.iter().enumerate() {
        if names.categories.get(&cluster).map(String::as_str) == Some("gambling") {
            dice.insert(addr as u32);
        }
    }
    dice
}

#[test]
fn h1_clusters_are_pure_and_tags_amplify() {
    let eco = Economy::run(SimConfig::default());
    let chain = eco.chain.resolved();
    let gt = eco.gt.to_id_space(chain);

    let clustering = Clusterer::h1_only().run(chain);
    let score = score_clustering(&clustering, &gt.owner_of);
    // H1 is an inherent protocol property: zero false merges.
    assert_eq!(score.impure_clusters, 0, "H1 must never merge two owners");
    assert_eq!(score.purity(), 1.0);

    // Tag amplification: named clusters cover far more addresses than the
    // hand-tagged set (the paper: 1,070 addresses → 1.8 M, ≈1,600×).
    let db = tagdb_from(&eco);
    let own_tagged: HashSet<u32> = db
        .tags_from(TagSource::OwnTransaction)
        .map(|t| t.address)
        .collect();
    let names = name_clusters(&clustering, &db);
    assert!(own_tagged.len() > 50);
    assert!(
        names.named_addresses as usize > own_tagged.len() * 3,
        "clustering amplifies {} tagged addresses to {}",
        own_tagged.len(),
        names.named_addresses
    );
}

#[test]
fn fp_ladder_descends_as_in_the_paper() {
    let eco = Economy::run(SimConfig::tiny());
    let chain = eco.chain.resolved();
    let dice = dice_addresses(&eco);

    // Label naively, then walk the paper's estimator ladder.
    let naive_labels = change::identify(chain, &ChangeConfig::naive());
    assert!(naive_labels.labels > 100, "labels: {}", naive_labels.labels);

    let naive_est = fp::estimate(chain, &naive_labels, &ChangeConfig::naive());
    let mut dice_cfg = ChangeConfig::naive();
    dice_cfg.dice_exception = true;
    dice_cfg.dice_addresses = dice.clone();
    let dice_est = fp::estimate(chain, &naive_labels, &dice_cfg);

    // Waiting configs re-label (wait-to-label), then estimate with the
    // dice exception, mirroring §4.2.
    let mut day_cfg = dice_cfg.clone();
    day_cfg.wait_blocks = Some(BLOCKS_PER_DAY);
    let day_labels = change::identify(chain, &day_cfg);
    let day_est = fp::estimate(chain, &day_labels, &dice_cfg);

    let mut week_cfg = dice_cfg.clone();
    week_cfg.wait_blocks = Some(BLOCKS_PER_WEEK);
    let week_labels = change::identify(chain, &week_cfg);
    let week_est = fp::estimate(chain, &week_labels, &dice_cfg);

    // The ladder must descend: naive > dice-exception ≥ wait-a-day ≥ week.
    assert!(
        naive_est.rate() > dice_est.rate(),
        "dice exception lowers FP: {} -> {}",
        naive_est.rate(),
        dice_est.rate()
    );
    assert!(
        dice_est.rate() >= day_est.rate(),
        "waiting a day lowers FP: {} -> {}",
        dice_est.rate(),
        day_est.rate()
    );
    assert!(
        day_est.rate() >= week_est.rate(),
        "waiting a week lowers FP: {} -> {}",
        day_est.rate(),
        week_est.rate()
    );
    // And the naive rate should be substantial (the paper saw 13%).
    assert!(naive_est.rate() > 0.02, "naive rate {}", naive_est.rate());
}

#[test]
fn refined_h2_has_high_ground_truth_precision() {
    let eco = Economy::run(SimConfig::default());
    let chain = eco.chain.resolved();
    let gt = eco.gt.to_id_space(chain);
    let dice = dice_addresses(&eco);

    let refined = change::identify(chain, &ChangeConfig::refined(dice));
    let score = score_change_labels(chain, &refined, &gt.change_vout);
    assert!(score.scored_labels > 20, "labels {}", score.scored_labels);
    assert!(
        score.precision() > 0.95,
        "refined H2 precision {} ({} / {})",
        score.precision(),
        score.correct,
        score.scored_labels
    );

    // Naive precision should be visibly lower.
    let naive = change::identify(chain, &ChangeConfig::naive());
    let naive_score = score_change_labels(chain, &naive, &gt.change_vout);
    assert!(
        naive_score.precision() < score.precision(),
        "naive {} vs refined {}",
        naive_score.precision(),
        score.precision()
    );
}

#[test]
fn naive_h2_forms_super_cluster_refined_does_not() {
    // Sloppier services make the failure mode reliable.
    let cfg = SimConfig { service_sloppy_change_rate: 0.10, ..SimConfig::default() };
    let eco = Economy::run(cfg);
    let chain = eco.chain.resolved();
    let db = tagdb_from(&eco);
    let dice = dice_addresses(&eco);

    let naive = Clusterer::with_h2(ChangeConfig::naive()).run(chain);
    let naive_names = name_clusters(&naive, &db);

    let refined = Clusterer::with_h2(ChangeConfig::refined(dice)).run(chain);
    let refined_names = name_clusters(&refined, &db);

    let naive_max = naive_names
        .super_clusters
        .first()
        .map(|s| s.services.len())
        .unwrap_or(0);
    let refined_max = refined_names
        .super_clusters
        .first()
        .map(|s| s.services.len())
        .unwrap_or(0);
    assert!(
        naive_max >= 2,
        "naive H2 should weld services together (max merge {naive_max})"
    );
    assert!(
        refined_max < naive_max,
        "refinements shrink the super-cluster: naive {naive_max}, refined {refined_max}"
    );
}

#[test]
fn h1_splits_big_services_tags_remerge_them() {
    let eco = Economy::run(SimConfig::default());
    let chain = eco.chain.resolved();
    let db = tagdb_from(&eco);
    let clustering = Clusterer::h1_only().run(chain);
    let names = name_clusters(&clustering, &db);
    // Mt. Gox runs 20 internally disjoint subwallets; H1 must see several
    // clusters for it, which shared tags then collapse (the paper saw 20).
    let gox_clusters = names.clusters_of_service("Mt. Gox");
    assert!(
        gox_clusters.len() >= 2,
        "Mt. Gox spans {} clusters under H1",
        gox_clusters.len()
    );
    assert!(names.collapsed_by_names >= gox_clusters.len() - 1);
}

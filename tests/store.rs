//! Differential tests of the on-disk columnar artifact store: a saved
//! store directory reopened with `ServeArtifacts::open_dir` must be
//! byte-identical to the in-RAM build — asserted structurally, and then
//! over a live socket by comparing every request type's raw response
//! frames between a server on the reopened bundle and a server on the
//! original. A controlled merge-free chain additionally pins the delta
//! snapshot cost claim: per-epoch delta files stay O(new blocks) while
//! the full export grows with the chain.

use fistful::chain::address::Address;
use fistful::chain::amount::Amount;
use fistful::chain::builder::BlockBuilder;
use fistful::chain::chainstate::ChainState;
use fistful::chain::params::Params;
use fistful::core::cluster::Clusterer;
use fistful::core::incremental::sharded::{IngestConfig, ShardedIngest};
use fistful::core::naming::name_clusters;
use fistful::core::snapshot::{ClusterSnapshot, SnapshotDelta};
use fistful::core::tagdb::TagDb;
use fistful::serve::store::{delta_file_name, delta_files, CHAIN_FILE, SNAPSHOT_FILE};
use fistful::serve::{Client, Request, ServeArtifacts, ServeConfig, Server};
use fistful::sim::SimConfig;
use fistful::store::{read_chain, write_chain, Store, StoreWriter};
use fistful_bench::{serve_artifacts, theft_loots, Workbench};
use fistful_chain::encode::Encodable;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// One tiny economy plus its serving bundle, shared by the round-trip
/// tests (artifacts are expensive; directories and servers are not).
fn fixtures() -> &'static (Workbench, Arc<ServeArtifacts>) {
    static FIX: OnceLock<(Workbench, Arc<ServeArtifacts>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Workbench::build(SimConfig::tiny());
        let artifacts = Arc::new(serve_artifacts(&wb));
        (wb, artifacts)
    })
}

/// A fresh scratch directory under the target dir (kept out of `/tmp` so
/// parallel checkouts never collide).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("store-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn start_server(artifacts: &Arc<ServeArtifacts>) -> Server {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    Server::start(config, Arc::clone(artifacts)).expect("start server")
}

/// Saving the bundle (plus the chain container) and reopening it must
/// reproduce every artifact byte-for-byte, and a server started from the
/// reopened bundle must answer every request type with frames identical
/// to a server on the original — the fast-restart guarantee.
#[test]
fn reopened_bundle_is_byte_identical_and_serves_identically() {
    let (wb, artifacts) = fixtures();
    let chain = wb.eco.chain.resolved();
    let dir = scratch_dir("roundtrip");

    // Save: the serving bundle plus the chain's own container.
    let mut w = StoreWriter::new();
    write_chain(chain, &mut w);
    w.write_to(&dir.join(CHAIN_FILE)).expect("write chain container");
    let written = artifacts.save_dir(&dir).expect("save serving bundle");
    assert!(written > 0);

    // The chain survives its container round trip: re-encoding the
    // reopened chain yields the exact container bytes of the original
    // (`ResolvedChain` has no `PartialEq`; the container is canonical).
    let mut store = Store::open(&dir.join(CHAIN_FILE)).expect("open chain container");
    let reopened_chain = read_chain(&mut store).expect("decode chain");
    let (mut a, mut b) = (StoreWriter::new(), StoreWriter::new());
    write_chain(chain, &mut a);
    write_chain(&reopened_chain, &mut b);
    assert_eq!(a.to_bytes(), b.to_bytes(), "chain container round trip");

    // The serving bundle reopens byte-identical, artifact by artifact.
    let reopened = ServeArtifacts::open_dir(&dir).expect("open bundle");
    assert_eq!(reopened.snapshot.to_bytes(), artifacts.snapshot.to_bytes());
    assert_eq!(reopened.graph, artifacts.graph);
    assert_eq!(reopened.labels.vout_of, artifacts.labels.vout_of);
    assert_eq!(reopened.labels.labels, artifacts.labels.labels);
    assert_eq!(reopened.labels.skip_counts, artifacts.labels.skip_counts);
    assert_eq!(reopened.balances, artifacts.balances);

    // Live-socket differential: one server over each bundle, every
    // request type, raw frames compared byte-for-byte.
    let ram_server = start_server(artifacts);
    let disk_server = start_server(&Arc::new(reopened));
    let mut ram = Client::connect(ram_server.local_addr()).expect("connect ram");
    let mut disk = Client::connect(disk_server.local_addr()).expect("connect disk");

    let mut requests = vec![Request::Ping];
    let n_addr = artifacts.snapshot.address_count() as u32;
    for address in (0..n_addr + 1).step_by((n_addr as usize / 16).max(1)) {
        requests.push(Request::AddressInfo { address });
    }
    let n_clusters = artifacts.snapshot.cluster_count() as u32;
    for cluster in (0..n_clusters + 1).step_by((n_clusters as usize / 16).max(1)) {
        requests.push(Request::ClusterSummary { cluster });
    }
    let tip = artifacts.snapshot.tip_height();
    for height in (0..=tip + 5).step_by((tip as usize / 8).max(1)) {
        requests.push(Request::BalancePoint { height });
    }
    for (_, loot) in theft_loots(chain, &wb.eco.script_report.thefts) {
        requests.push(Request::TaintTrace { loot, max_txs: 5_000 });
    }
    assert!(requests.len() > 30, "request matrix covers the query space");
    for request in &requests {
        let payload = request.encode_to_vec();
        let from_ram = ram.call_raw(&payload).expect("ram response");
        let from_disk = disk.call_raw(&payload).expect("disk response");
        assert_eq!(from_ram, from_disk, "response frames diverge for {request:?}");
    }

    ram_server.shutdown();
    disk_server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A chain where every epoch only mints fresh singleton addresses — no
/// multi-input spends, so no cluster merges, ever. This is the store's
/// best case and the shape the delta cost claim is stated for.
fn merge_free_chain(epochs: usize, epoch_blocks: usize, outputs_per_block: usize) -> ChainState {
    let params = Params::regtest();
    let mut chain = ChainState::new(params.clone());
    let mut next_seed = 1u64;
    for height in 0..(epochs * epoch_blocks) as u64 {
        let subsidy = chain.next_subsidy();
        let each = Amount::from_sat(subsidy.to_sat() / outputs_per_block as u64);
        let outputs: Vec<(Address, Amount)> = (0..outputs_per_block)
            .map(|_| {
                let addr = Address::from_seed(next_seed);
                next_seed += 1;
                (addr, each)
            })
            .collect();
        let block = BlockBuilder::new(&params)
            .coinbase_multi(height, outputs)
            .build_on(&chain);
        chain.accept_block(block).expect("accept merge-free block");
    }
    chain
}

/// On merge-free epochs the per-epoch delta files are O(new blocks): each
/// delta stays the same size as the chain grows, and is a small fraction
/// of the ever-growing full export — asserted against real file sizes.
/// Folding base + deltas back from disk is byte-identical to the full
/// export, which itself is byte-identical to the batch snapshot.
#[test]
fn merge_free_delta_files_stay_o_new_blocks() {
    const EPOCHS: usize = 6;
    const EPOCH_BLOCKS: usize = 50;
    const OUTPUTS: usize = 16;
    let state = merge_free_chain(EPOCHS, EPOCH_BLOCKS, OUTPUTS);
    let chain = state.resolved();
    let db = TagDb::new();
    let dir = scratch_dir("merge-free");

    // Ingest block by block, persisting a base at the first epoch
    // boundary and one delta file per later boundary.
    let mut pipe = ShardedIngest::new(IngestConfig::h1_only(4, EPOCH_BLOCKS));
    let mut prev: Option<ClusterSnapshot> = None;
    let mut delta_sizes: Vec<u64> = Vec::new();
    let mut last_reconciled = 0;
    let boundary = |pipe: &mut ShardedIngest, prev: &mut Option<ClusterSnapshot>,
                        delta_sizes: &mut Vec<u64>| {
        match prev.take() {
            None => {
                let snap = pipe.export_snapshot(chain, &db);
                let mut w = StoreWriter::new();
                snap.write_store(&mut w);
                w.write_to(&dir.join(SNAPSHOT_FILE)).expect("write base");
                *prev = Some(snap);
            }
            Some(p) => {
                let (snap, delta) = pipe.export_delta(chain, &db, &p);
                if delta.is_empty() {
                    *prev = Some(snap);
                    return;
                }
                let mut w = StoreWriter::new();
                delta.write_store(&mut w);
                let path = dir.join(delta_file_name(delta_sizes.len()));
                delta_sizes.push(w.write_to(&path).expect("write delta"));
                *prev = Some(snap);
            }
        }
    };
    for block in chain.blocks() {
        pipe.ingest_block(&block);
        if pipe.reconciled_txs() != last_reconciled {
            last_reconciled = pipe.reconciled_txs();
            boundary(&mut pipe, &mut prev, &mut delta_sizes);
        }
    }
    pipe.flush(chain);
    boundary(&mut pipe, &mut prev, &mut delta_sizes);
    let full = pipe.export_snapshot(chain, &db);

    // Fold the files back: base + deltas from disk == full export ==
    // the batch snapshot, all byte-identical.
    let mut store = Store::open(&dir.join(SNAPSHOT_FILE)).expect("open base");
    let base = ClusterSnapshot::read_store(&mut store).expect("decode base");
    let deltas: Vec<SnapshotDelta> = delta_files(&dir)
        .expect("list deltas")
        .iter()
        .map(|path| {
            let mut store = Store::open(path).expect("open delta");
            SnapshotDelta::read_store(&mut store).expect("decode delta")
        })
        .collect();
    assert_eq!(deltas.len(), delta_sizes.len());
    assert!(deltas.len() >= EPOCHS - 1, "one delta per epoch after the base");
    let folded = ClusterSnapshot::from_base_and_deltas(&base, &deltas).expect("fold");
    assert_eq!(folded.to_bytes(), full.to_bytes(), "base + deltas == full export");
    let batch = Clusterer::h1_only().run(chain);
    let names = name_clusters(&batch, &db);
    let rebuilt = ClusterSnapshot::build(chain, &batch, &names);
    assert_eq!(full.to_bytes(), rebuilt.to_bytes(), "incremental == batch");

    // The cost claim, against real file sizes. A full export re-written
    // at the tip:
    let mut w = StoreWriter::new();
    full.write_store(&mut w);
    let full_len = w.write_to(&dir.join("full.fst")).expect("write full export");

    // (a) every delta is a small fraction of the full export;
    for &len in &delta_sizes {
        assert!(
            len * 2 < full_len,
            "delta file ({len} bytes) is not small next to the full export ({full_len} bytes)"
        );
    }
    // (b) deltas do not grow with the chain: the chain grew ~6x between
    // the first and last epoch, yet every delta file is the same size to
    // within container page alignment — the append cost tracks the
    // epoch's new blocks, not the chain.
    let min = *delta_sizes.iter().min().unwrap();
    let max = *delta_sizes.iter().max().unwrap();
    assert!(
        max - min <= 2 * 4096,
        "delta file sizes spread beyond page alignment: min {min}, max {max}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
